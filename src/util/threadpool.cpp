#include "util/threadpool.hpp"

#include <atomic>
#include <chrono>

#include "obs/obs.hpp"

namespace hermes {
namespace util {

namespace {

/** Set to the owning pool while a worker executes tasks, so a nested
 *  parallelFor() can detect it would deadlock waiting on itself. */
thread_local const ThreadPool *t_worker_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
    : default_group_(std::make_shared<GroupState>())
{
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(1,
            std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_task_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::insideWorker() const
{
    return t_worker_pool == this;
}

void
ThreadPool::enqueue(const std::shared_ptr<GroupState> &group,
                    std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(group->mutex);
        ++group->pending;
    }
    // The wrapper owns a shared_ptr to the group, so a TaskGroup may be
    // destroyed while its tasks are still queued without dangling.
    auto wrapped = [group, task = std::move(task)] {
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(group->mutex);
            if (!group->error)
                group->error = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(group->mutex);
            if (--group->pending == 0)
                group->cv_done.notify_all();
        }
    };
    {
        std::unique_lock<std::mutex> lock(mutex_);
        tasks_.push(std::move(wrapped));
    }
    cv_task_.notify_one();
}

void
ThreadPool::waitGroup(GroupState &group)
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(group.mutex);
        group.cv_done.wait(lock, [&group] { return group.pending == 0; });
        error = group.error;
        group.error = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::TaskGroup::waitNoThrow()
{
    try {
        wait();
    } catch (...) {
        // Destructor path: the caller never called wait(), so there is
        // nowhere to deliver the exception. Drop it rather than terminate.
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    enqueue(default_group_, std::move(task));
}

void
ThreadPool::wait()
{
    waitGroup(*default_group_);
}

void
ThreadPool::workerLoop()
{
    t_worker_pool = this;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_task_.wait(lock,
                [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    static obs::Histogram &latency =
        obs::Registry::instance().histogram(obs::names::kPoolParallelForUs);
    static obs::Counter &items =
        obs::Registry::instance().counter(obs::names::kPoolParallelForItems);
    struct Observe
    {
        std::chrono::steady_clock::time_point start =
            std::chrono::steady_clock::now();
        ~Observe()
        {
            latency.observe(std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start).count());
        }
    } observe;
    items.add(n);
    obs::ScopedSpan span("pool.parallel_for");
    span.arg("n", static_cast<std::uint64_t>(n));

    // Inline when concurrency cannot help (single worker, single item) or
    // would deadlock (nested call from one of this pool's own tasks, which
    // would block a worker waiting for tasks only that worker could run).
    if (size() == 1 || n == 1 || insideWorker()) {
        span.arg("inline", 1.0);
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto counter = std::make_shared<std::atomic<std::size_t>>(0);
    auto failed = std::make_shared<std::atomic<bool>>(false);
    auto drive = [counter, failed, n, &fn] {
        while (!failed->load(std::memory_order_relaxed)) {
            std::size_t i = counter->fetch_add(1);
            if (i >= n)
                return;
            fn(i);
        }
    };

    TaskGroup group(*this);
    std::size_t workers = std::min(size(), n - 1);
    for (std::size_t w = 0; w < workers; ++w) {
        group.run([drive, failed] {
            // A throwing iteration stops everyone from claiming further
            // indices; the exception itself is captured by the group.
            try {
                drive();
            } catch (...) {
                failed->store(true, std::memory_order_relaxed);
                throw;
            }
        });
    }

    // The caller participates too; its exception takes priority (the
    // group's captured one is then dropped by waitNoThrow in ~TaskGroup).
    try {
        drive();
    } catch (...) {
        failed->store(true, std::memory_order_relaxed);
        throw;
    }
    group.wait();
}

} // namespace util
} // namespace hermes
