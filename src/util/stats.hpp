/**
 * @file
 * Summary statistics helpers used by the evaluation and simulation layers.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace hermes {
namespace util {

/**
 * Streaming accumulator for scalar samples.
 *
 * Tracks count, mean, variance (Welford), min and max without storing
 * samples. For percentiles, use Distribution instead.
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const;
    double max() const;

    /** Population variance. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Sample-retaining distribution supporting exact percentiles.
 */
class Distribution
{
  public:
    /** Add one sample (invalidates cached sort). */
    void add(double x);

    /** Bulk add. */
    void add(const std::vector<double> &xs);

    std::size_t count() const { return samples_.size(); }
    double mean() const;
    double sum() const;
    double min() const;
    double max() const;

    /**
     * Exact percentile with linear interpolation.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Shorthand for percentile(50). */
    double median() const { return percentile(50.0); }

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = true;
};

/** Arithmetic mean of a vector (0 for empty input). */
double mean(const std::vector<double> &xs);

/** Geometric mean; all inputs must be positive. */
double geometricMean(const std::vector<double> &xs);

} // namespace util
} // namespace hermes
