#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace hermes {
namespace util {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    std::size_t total = n_ + other.n_;
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = total;
}

double
RunningStats::min() const
{
    HERMES_ASSERT(n_ > 0, "min of empty RunningStats");
    return min_;
}

double
RunningStats::max() const
{
    HERMES_ASSERT(n_ > 0, "max of empty RunningStats");
    return max_;
}

double
RunningStats::variance() const
{
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
Distribution::add(double x)
{
    samples_.push_back(x);
    dirty_ = true;
}

void
Distribution::add(const std::vector<double> &xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    dirty_ = true;
}

double
Distribution::mean() const
{
    return util::mean(samples_);
}

double
Distribution::sum() const
{
    double acc = 0.0;
    for (double x : samples_)
        acc += x;
    return acc;
}

double
Distribution::min() const
{
    HERMES_ASSERT(!samples_.empty(), "min of empty Distribution");
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Distribution::max() const
{
    HERMES_ASSERT(!samples_.empty(), "max of empty Distribution");
    return *std::max_element(samples_.begin(), samples_.end());
}

void
Distribution::ensureSorted() const
{
    if (dirty_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

double
Distribution::percentile(double p) const
{
    HERMES_ASSERT(!samples_.empty(), "percentile of empty Distribution");
    HERMES_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_[0];
    double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double
geometricMean(const std::vector<double> &xs)
{
    HERMES_ASSERT(!xs.empty(), "geometric mean of empty vector");
    double acc = 0.0;
    for (double x : xs) {
        HERMES_ASSERT(x > 0.0, "geometric mean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

} // namespace util
} // namespace hermes
