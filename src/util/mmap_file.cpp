#include "util/mmap_file.hpp"

#include <algorithm>
#include <mutex>
#include <set>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"
#include "util/serialize.hpp"

namespace hermes {
namespace util {

namespace {

/** Process-wide table of live mappings, for the obs residency gauges. */
std::mutex g_map_mutex;
std::set<const MmapFile *> g_mappings;

/** Refresh the mmap.* gauges; runs on every exporter scrape. */
void
updateMmapGauges()
{
    auto &registry = obs::Registry::instance();
    registry.gauge(obs::names::kMmapMappedBytes)
        .set(static_cast<double>(MmapFile::totalMappedBytes()));
    registry.gauge(obs::names::kMmapResidentBytes)
        .set(static_cast<double>(MmapFile::totalResidentBytes()));
}

/**
 * The gauges are minted lazily, on the first successful map: a process
 * that never maps an index exports no mmap.* series and stays
 * bit-identical to pre-mmap builds.
 */
void
armScrapeHook()
{
    static std::once_flag once;
    std::call_once(once, [] {
        obs::addScrapeHook(&updateMmapGauges);
        updateMmapGauges();
    });
}

} // namespace

MmapFile::MmapFile(const std::string &path) : path_(path)
{
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        throw FormatError(FormatErrorCode::Io,
                          "cannot open for mapping: " + path);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw FormatError(FormatErrorCode::Io, "cannot stat: " + path);
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
        void *p = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd, 0);
        if (p == MAP_FAILED) {
            ::close(fd);
            size_ = 0;
            throw FormatError(FormatErrorCode::Io, "mmap failed: " + path);
        }
        data_ = static_cast<const std::uint8_t *>(p);
    }
    // The fd is not needed once mapped; the mapping keeps the file alive.
    ::close(fd);
    registerSelf();
    armScrapeHook();
}

MmapFile::~MmapFile() { reset(); }

MmapFile::MmapFile(MmapFile &&other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_))
{
    if (other.data_ != nullptr || other.size_ == 0) {
        std::lock_guard<std::mutex> lock(g_map_mutex);
        g_mappings.erase(&other);
        if (data_ != nullptr)
            g_mappings.insert(this);
    }
    other.data_ = nullptr;
    other.size_ = 0;
}

MmapFile &
MmapFile::operator=(MmapFile &&other) noexcept
{
    if (this != &other) {
        reset();
        data_ = other.data_;
        size_ = other.size_;
        path_ = std::move(other.path_);
        {
            std::lock_guard<std::mutex> lock(g_map_mutex);
            g_mappings.erase(&other);
            if (data_ != nullptr)
                g_mappings.insert(this);
        }
        other.data_ = nullptr;
        other.size_ = 0;
    }
    return *this;
}

void
MmapFile::reset()
{
    if (data_ != nullptr) {
        unregisterSelf();
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
        data_ = nullptr;
    }
    size_ = 0;
}

void
MmapFile::advise(MapAdvice advice) const
{
    if (data_ == nullptr)
        return;
    int flag = MADV_NORMAL;
    switch (advice) {
    case MapAdvice::Normal:
        flag = MADV_NORMAL;
        break;
    case MapAdvice::Sequential:
        flag = MADV_SEQUENTIAL;
        break;
    case MapAdvice::Random:
        flag = MADV_RANDOM;
        break;
    case MapAdvice::WillNeed:
        flag = MADV_WILLNEED;
        break;
    case MapAdvice::DontNeed:
        flag = MADV_DONTNEED;
        break;
    }
    // Best effort: a kernel that refuses the hint changes nothing
    // about correctness.
    (void)::madvise(const_cast<std::uint8_t *>(data_), size_, flag);
}

std::size_t
MmapFile::residentBytes() const
{
    if (data_ == nullptr || size_ == 0)
        return 0;
    const std::size_t page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    const std::size_t npages = (size_ + page - 1) / page;
    // Walk in bounded chunks so a terabyte mapping does not need a
    // terabyte/page vector.
    constexpr std::size_t kChunkPages = std::size_t(1) << 20;
    std::vector<unsigned char> vec(std::min(npages, kChunkPages));
    std::size_t resident_pages = 0;
    for (std::size_t base = 0; base < npages; base += kChunkPages) {
        const std::size_t chunk = std::min(kChunkPages, npages - base);
        const std::size_t len =
            std::min(chunk * page, size_ - base * page);
        void *addr = const_cast<std::uint8_t *>(data_) + base * page;
        if (::mincore(addr, len, vec.data()) != 0) {
            return size_; // kernel cannot answer: assume resident
        }
        for (std::size_t i = 0; i < chunk; ++i)
            resident_pages += vec[i] & 1;
    }
    return std::min(resident_pages * page, size_);
}

void
MmapFile::registerSelf()
{
    if (data_ == nullptr)
        return;
    std::lock_guard<std::mutex> lock(g_map_mutex);
    g_mappings.insert(this);
}

void
MmapFile::unregisterSelf()
{
    std::lock_guard<std::mutex> lock(g_map_mutex);
    g_mappings.erase(this);
}

std::uint64_t
MmapFile::totalMappedBytes()
{
    std::lock_guard<std::mutex> lock(g_map_mutex);
    std::uint64_t total = 0;
    for (const auto *m : g_mappings)
        total += m->size();
    return total;
}

std::uint64_t
MmapFile::totalResidentBytes()
{
    std::lock_guard<std::mutex> lock(g_map_mutex);
    std::uint64_t total = 0;
    for (const auto *m : g_mappings)
        total += m->residentBytes();
    return total;
}

} // namespace util
} // namespace hermes
