/**
 * @file
 * Deterministic pseudo-random number generation for reproducible experiments.
 *
 * All stochastic components of Hermes (corpus synthesis, K-means seeding,
 * query sampling) draw from Rng so that every bench and test is exactly
 * reproducible from a 64-bit seed.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace hermes {
namespace util {

/**
 * xoshiro256++ generator with splitmix64 seeding.
 *
 * Small, fast, and high quality; deliberately not std::mt19937 so results
 * are bit-identical across standard library implementations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) with rejection to avoid modulo bias. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Standard normal via Box–Muller (cached second value). */
    double gaussian();

    /** Normal with mean/stddev. */
    double gaussian(double mean, double stddev);

    /**
     * Sample an integer in [0, n) from a Zipf distribution with exponent s.
     * Uses a precomputable harmonic normalizer; see ZipfSampler for the
     * cached variant used in hot loops.
     */
    std::size_t zipf(std::size_t n, double s);

    /** Fisher–Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Sample k distinct indices from [0, n) (k <= n), order unspecified. */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t k);

    /** Fork an independent stream (seeded from this stream). */
    Rng split();

  private:
    std::uint64_t s_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

/**
 * Zipf sampler with a precomputed CDF for repeated draws over a fixed
 * support size; O(log n) per draw.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Support size (samples fall in [0, n)).
     * @param s Zipf exponent; s = 0 degenerates to uniform.
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw one sample using the supplied generator. */
    std::size_t operator()(Rng &rng) const;

    /** Probability mass of rank i. */
    double pmf(std::size_t i) const;

  private:
    std::vector<double> cdf_;
};

} // namespace util
} // namespace hermes
