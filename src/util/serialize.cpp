#include "util/serialize.hpp"

namespace hermes {
namespace util {

BinaryWriter::BinaryWriter(const std::string &path, const std::string &magic,
                           std::uint32_t version)
    : out_(path, std::ios::binary)
{
    if (!out_) {
        HERMES_FATAL("cannot open archive for writing: ", path);
    }
    HERMES_ASSERT(magic.size() == 4, "archive magic must be 4 chars");
    out_.write(magic.data(), 4);
    write(version);
}

void
BinaryWriter::writeString(const std::string &s)
{
    write<std::uint64_t>(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

BinaryReader::BinaryReader(const std::string &path, const std::string &magic,
                           std::uint32_t expected_version)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_) {
        HERMES_FATAL("cannot open archive for reading: ", path);
    }
    in_.seekg(0, std::ios::end);
    file_size_ = static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(0, std::ios::beg);
    char tag[4];
    in_.read(tag, 4);
    if (!in_.good() || std::string(tag, 4) != magic) {
        HERMES_FATAL("bad archive magic in ", path, " (expected ", magic, ")");
    }
    auto version = read<std::uint32_t>();
    if (version != expected_version) {
        HERMES_FATAL("archive version mismatch in ", path, ": got ", version,
                     ", expected ", expected_version);
    }
}

std::uint64_t
BinaryReader::remainingBytes()
{
    auto pos = in_.tellg();
    if (pos < 0)
        return 0;
    auto offset = static_cast<std::uint64_t>(pos);
    return offset >= file_size_ ? 0 : file_size_ - offset;
}

std::string
BinaryReader::readString()
{
    auto n = read<std::uint64_t>();
    if (n > remainingBytes()) {
        HERMES_FATAL("corrupt archive ", path_, ": string length ", n,
                     " exceeds the ", remainingBytes(),
                     " bytes left in the file");
    }
    std::string s(n, '\0');
    if (n) {
        in_.read(s.data(), static_cast<std::streamsize>(n));
        HERMES_ASSERT(in_.good(), "truncated archive string in ", path_);
    }
    return s;
}

} // namespace util
} // namespace hermes
