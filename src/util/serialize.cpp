#include "util/serialize.hpp"

#include <array>

namespace hermes {
namespace util {

const char *
formatErrorCodeName(FormatErrorCode code)
{
    switch (code) {
    case FormatErrorCode::Io:
        return "io";
    case FormatErrorCode::BadMagic:
        return "bad-magic";
    case FormatErrorCode::BadVersion:
        return "bad-version";
    case FormatErrorCode::Truncated:
        return "truncated";
    case FormatErrorCode::Corrupt:
        return "corrupt";
    case FormatErrorCode::Checksum:
        return "checksum";
    }
    return "unknown";
}

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed)
{
    static const auto table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

BinaryWriter::BinaryWriter(const std::string &path, const std::string &magic,
                           std::uint32_t version)
    : file_(path, std::ios::binary), out_(&file_)
{
    if (!file_) {
        HERMES_FATAL("cannot open archive for writing: ", path);
    }
    HERMES_ASSERT(magic.size() == 4, "archive magic must be 4 chars");
    out_->write(magic.data(), 4);
    write(version);
}

BinaryWriter::BinaryWriter(std::ostream &out) : out_(&out) {}

void
BinaryWriter::writeString(const std::string &s)
{
    write<std::uint64_t>(s.size());
    out_->write(s.data(), static_cast<std::streamsize>(s.size()));
}

BinaryReader::BinaryReader(const std::string &path, const std::string &magic,
                           std::uint32_t expected_version)
    : file_(path, std::ios::binary), in_(&file_), path_(path)
{
    if (!file_) {
        HERMES_FATAL("cannot open archive for reading: ", path);
    }
    in_->seekg(0, std::ios::end);
    file_size_ = static_cast<std::uint64_t>(in_->tellg());
    in_->seekg(0, std::ios::beg);
    char tag[4];
    in_->read(tag, 4);
    if (!in_->good() || std::string(tag, 4) != magic) {
        HERMES_FATAL("bad archive magic in ", path, " (expected ", magic, ")");
    }
    auto version = read<std::uint32_t>();
    if (version != expected_version) {
        HERMES_FATAL("archive version mismatch in ", path, ": got ", version,
                     ", expected ", expected_version);
    }
}

BinaryReader::BinaryReader(const void *data, std::size_t size,
                           std::string name)
    : mem_(std::string(static_cast<const char *>(data), size)),
      in_(&mem_), path_(std::move(name)), file_size_(size),
      throw_on_error_(true)
{
}

void
BinaryReader::fail(FormatErrorCode code, const std::string &msg)
{
    if (throw_on_error_) {
        throw FormatError(code, path_ + ": " + msg);
    }
    // Historical file-mode discipline: corrupt CLI inputs exit with a
    // clean message. The "truncated"/"corrupt archive" lead-ins are
    // load-bearing for the robustness death tests.
    HERMES_FATAL(code == FormatErrorCode::Truncated ? "truncated"
                                                    : "corrupt",
                 " archive ", path_, ": ", msg);
}

std::uint64_t
BinaryReader::remainingBytes()
{
    auto pos = in_->tellg();
    if (pos < 0)
        return 0;
    auto offset = static_cast<std::uint64_t>(pos);
    return offset >= file_size_ ? 0 : file_size_ - offset;
}

std::string
BinaryReader::readString()
{
    auto n = read<std::uint64_t>();
    if (n > remainingBytes()) {
        fail(FormatErrorCode::Corrupt,
             detail::concat("string length ", n, " exceeds the ",
                            remainingBytes(), " bytes left in the file"));
    }
    std::string s(n, '\0');
    if (n) {
        in_->read(s.data(), static_cast<std::streamsize>(n));
        if (!in_->good())
            fail(FormatErrorCode::Truncated, "truncated archive string");
    }
    return s;
}

} // namespace util
} // namespace hermes
