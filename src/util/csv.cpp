#include "util/csv.hpp"

#include <cstdio>
#include <iomanip>
#include <iostream>

#include "util/logging.hpp"

namespace hermes {
namespace util {

CsvWriter::CsvWriter(const std::string &path) : out_(path)
{
    if (!out_) {
        HERMES_FATAL("cannot open CSV output file: ", path);
    }
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    for (std::size_t i = 0; i < columns.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(columns[i]);
    }
    out_ << '\n';
}

void
CsvWriter::endRow()
{
    for (std::size_t i = 0; i < row_.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << row_[i];
    }
    out_ << '\n';
    row_.clear();
    ++rows_;
}

std::string
CsvWriter::escape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

TablePrinter::TablePrinter(std::vector<int> widths) : widths_(std::move(widths))
{
    HERMES_ASSERT(!widths_.empty(), "table needs at least one column");
}

void
TablePrinter::header(const std::vector<std::string> &columns)
{
    row(columns);
    int total = 0;
    for (int w : widths_)
        total += w + 2;
    std::cout << std::string(static_cast<std::size_t>(total), '-') << '\n';
}

void
TablePrinter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        int w = i < widths_.size() ? widths_[i] : 12;
        std::cout << std::left << std::setw(w) << cells[i] << "  ";
    }
    std::cout << '\n';
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

} // namespace util
} // namespace hermes
