/**
 * @file
 * Minimal CSV emission used by the bench harness to dump figure data, plus
 * a fixed-width table printer that mirrors the rows the paper reports.
 */

#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace hermes {
namespace util {

/**
 * Row-oriented CSV writer.
 *
 * Values are formatted via operator<<; commas/quotes in string cells are
 * escaped per RFC 4180.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; fatal on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write the header row. */
    void header(const std::vector<std::string> &columns);

    /** Begin accumulating a row of cells. */
    template <typename T>
    CsvWriter &
    cell(const T &value)
    {
        std::ostringstream oss;
        oss << value;
        row_.push_back(escape(oss.str()));
        return *this;
    }

    /** Flush the accumulated row. */
    void endRow();

    /** Number of data rows written so far. */
    std::size_t rowsWritten() const { return rows_; }

  private:
    static std::string escape(const std::string &s);

    std::ofstream out_;
    std::vector<std::string> row_;
    std::size_t rows_ = 0;
};

/**
 * Console table printer with fixed-width columns — the benches use this to
 * print paper-style result tables.
 */
class TablePrinter
{
  public:
    /** @param widths Column widths in characters. */
    explicit TablePrinter(std::vector<int> widths);

    /** Print a header row followed by a rule. */
    void header(const std::vector<std::string> &columns);

    /** Print one data row (cells already formatted). */
    void row(const std::vector<std::string> &cells);

    /** Format a double with @p precision decimal places. */
    static std::string num(double v, int precision = 3);

  private:
    std::vector<int> widths_;
};

} // namespace util
} // namespace hermes
