/**
 * @file
 * Error / status reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated; this is a bug in Hermes.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            terminate with a clean error.
 * warn()   — something works but is suspicious or approximated.
 * inform() — plain status output.
 * debug()  — chatty diagnostics; compiled out of Release builds unless
 *            HERMES_ENABLE_DEBUG_LOG is defined, and hidden at runtime
 *            unless the log level is Debug (HERMES_LOG_LEVEL=debug).
 *
 * Each message is emitted as a single write under a mutex, so lines
 * from concurrent threads (node workers, clients) never interleave.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace hermes {
namespace util {

/** Severity classes understood by logMessage(), least severe first. */
enum class LogLevel {
    Debug,
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Emit a formatted log line to stderr (or stdout for Debug/Inform).
 * Messages below the runtime log level are dropped; Fatal and Panic
 * are always emitted.
 *
 * @param level Severity of the message.
 * @param file  Source file of the call site.
 * @param line  Source line of the call site.
 * @param msg   Fully formatted message text.
 */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &msg);

/** True once warnings have been silenced via setQuiet(). */
bool quietMode();

/** Suppress Inform/Warn output (used by tests and benches). */
void setQuiet(bool quiet);

/**
 * Runtime log threshold: messages with a lower severity are dropped.
 * Initialized from the HERMES_LOG_LEVEL environment variable
 * ("debug" | "info" | "warn"), defaulting to Inform.
 */
LogLevel logLevel();

/** Override the runtime log threshold. */
void setLogLevel(LogLevel level);

namespace detail {

/** Fold a list of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace util
} // namespace hermes

/** Internal invariant violated: print and abort (core-dump friendly). */
#define HERMES_PANIC(...)                                                     \
    do {                                                                      \
        ::hermes::util::logMessage(::hermes::util::LogLevel::Panic,           \
            __FILE__, __LINE__, ::hermes::util::detail::concat(__VA_ARGS__)); \
        std::abort();                                                         \
    } while (0)

/** Unrecoverable user error: print and exit(1). */
#define HERMES_FATAL(...)                                                     \
    do {                                                                      \
        ::hermes::util::logMessage(::hermes::util::LogLevel::Fatal,           \
            __FILE__, __LINE__, ::hermes::util::detail::concat(__VA_ARGS__)); \
        std::exit(1);                                                         \
    } while (0)

/** Suspicious but survivable condition. */
#define HERMES_WARN(...)                                                      \
    ::hermes::util::logMessage(::hermes::util::LogLevel::Warn,                \
        __FILE__, __LINE__, ::hermes::util::detail::concat(__VA_ARGS__))

/** Plain status message. */
#define HERMES_INFORM(...)                                                    \
    ::hermes::util::logMessage(::hermes::util::LogLevel::Inform,              \
        __FILE__, __LINE__, ::hermes::util::detail::concat(__VA_ARGS__))

/**
 * Chatty diagnostic, off the hot path by construction: present in debug
 * builds (and Release builds compiled with -DHERMES_ENABLE_DEBUG_LOG),
 * compiled to nothing otherwise. When compiled in, it is still dropped
 * at runtime unless logLevel() == Debug.
 */
#if !defined(NDEBUG) || defined(HERMES_ENABLE_DEBUG_LOG)
#define HERMES_DEBUG(...)                                                     \
    do {                                                                      \
        if (::hermes::util::logLevel() <=                                     \
            ::hermes::util::LogLevel::Debug) {                                \
            ::hermes::util::logMessage(::hermes::util::LogLevel::Debug,       \
                __FILE__, __LINE__,                                           \
                ::hermes::util::detail::concat(__VA_ARGS__));                 \
        }                                                                     \
    } while (0)
#else
#define HERMES_DEBUG(...)                                                     \
    do {                                                                      \
    } while (0)
#endif

/** Cheap always-on assertion that panics with context on failure. */
#define HERMES_ASSERT(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            HERMES_PANIC("assertion failed: " #cond " ", __VA_ARGS__);        \
        }                                                                     \
    } while (0)
