/**
 * @file
 * Error / status reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated; this is a bug in Hermes.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            terminate with a clean error.
 * warn()   — something works but is suspicious or approximated.
 * inform() — plain status output.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>

namespace hermes {
namespace util {

/** Severity classes understood by logMessage(). */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Emit a formatted log line to stderr (or stdout for Inform).
 *
 * @param level Severity of the message.
 * @param file  Source file of the call site.
 * @param line  Source line of the call site.
 * @param msg   Fully formatted message text.
 */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &msg);

/** True once warnings have been silenced via setQuiet(). */
bool quietMode();

/** Suppress Inform/Warn output (used by tests and benches). */
void setQuiet(bool quiet);

namespace detail {

/** Fold a list of streamable arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace util
} // namespace hermes

/** Internal invariant violated: print and abort (core-dump friendly). */
#define HERMES_PANIC(...)                                                     \
    do {                                                                      \
        ::hermes::util::logMessage(::hermes::util::LogLevel::Panic,           \
            __FILE__, __LINE__, ::hermes::util::detail::concat(__VA_ARGS__)); \
        std::abort();                                                         \
    } while (0)

/** Unrecoverable user error: print and exit(1). */
#define HERMES_FATAL(...)                                                     \
    do {                                                                      \
        ::hermes::util::logMessage(::hermes::util::LogLevel::Fatal,           \
            __FILE__, __LINE__, ::hermes::util::detail::concat(__VA_ARGS__)); \
        std::exit(1);                                                         \
    } while (0)

/** Suspicious but survivable condition. */
#define HERMES_WARN(...)                                                      \
    ::hermes::util::logMessage(::hermes::util::LogLevel::Warn,                \
        __FILE__, __LINE__, ::hermes::util::detail::concat(__VA_ARGS__))

/** Plain status message. */
#define HERMES_INFORM(...)                                                    \
    ::hermes::util::logMessage(::hermes::util::LogLevel::Inform,              \
        __FILE__, __LINE__, ::hermes::util::detail::concat(__VA_ARGS__))

/** Cheap always-on assertion that panics with context on failure. */
#define HERMES_ASSERT(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            HERMES_PANIC("assertion failed: " #cond " ", __VA_ARGS__);        \
        }                                                                     \
    } while (0)
