#include "quant/scalar_codec.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "vecstore/simd_dispatch.hpp"

namespace hermes {
namespace quant {

namespace {

/**
 * Decode-on-the-fly distance computer. For SQ8, reconstruction per element
 * is one multiply-add, so asymmetric distances stay cheap without tables.
 *
 * The batched SQ8 scan folds the reconstruction into the distance:
 * with scale[j] = vdiff[j]/255 the decoded value is
 * vmin[j] + scale[j]*code[j], so
 *
 *   L2: (q[j] - decoded)^2 = ((q[j] - vmin[j]) - scale[j]*code[j])^2
 *   IP: q[j]*decoded       = q[j]*vmin[j] + (q[j]*scale[j])*code[j]
 *
 * and the per-query operands (q - vmin, q*scale, dot(q, vmin)) are
 * precomputed once here. Both dispatch arms use this restructured form,
 * so scalar-vs-AVX2 results differ only by reduction-order ulps.
 */
class ScalarDistance : public DistanceComputer
{
  public:
    ScalarDistance(const ScalarCodec &codec, vecstore::Metric metric,
                   vecstore::VecView query)
        : DistanceComputer(codec.codeSize()), codec_(codec),
          metric_(metric), query_(query), buffer_(codec.dim())
    {
        if (codec_.bits() != 8)
            return;
        const std::size_t d = codec_.dim();
        const float inv_levels =
            1.f / static_cast<float>(codec_.levels() - 1);
        const auto &vmin = codec_.mins();
        const auto &vdiff = codec_.widths();
        a_.resize(d);
        if (metric_ == vecstore::Metric::L2) {
            b_.resize(d);
            for (std::size_t j = 0; j < d; ++j) {
                a_[j] = query_[j] - vmin[j];
                b_[j] = vdiff[j] * inv_levels;
            }
        } else {
            bias_ = 0.f;
            for (std::size_t j = 0; j < d; ++j) {
                a_[j] = query_[j] * vdiff[j] * inv_levels;
                bias_ += query_[j] * vmin[j];
            }
        }
    }

    float
    operator()(const std::uint8_t *code) const override
    {
        codec_.decode(code, vecstore::MutVecView(buffer_.data(),
                                                 buffer_.size()));
        float acc = 0.f;
        const std::size_t d = query_.size();
        if (metric_ == vecstore::Metric::L2) {
            for (std::size_t j = 0; j < d; ++j) {
                float diff = query_[j] - buffer_[j];
                acc += diff * diff;
            }
            return acc;
        }
        for (std::size_t j = 0; j < d; ++j)
            acc += query_[j] * buffer_[j];
        return -acc;
    }

    void
    scan(const std::uint8_t *codes, std::size_t n, float threshold,
         float *out) const override
    {
        if (codec_.bits() != 8) {
            // SQ4 keeps the decode-per-code path (half-byte unpack does
            // not batch profitably without a dedicated kernel).
            DistanceComputer::scan(codes, n, threshold, out);
            return;
        }
        const std::size_t d = codec_.dim();
        const auto &kt = vecstore::simd::active();
        if (metric_ == vecstore::Metric::L2)
            kt.sq8_scan_l2(a_.data(), b_.data(), codes, n, d, out);
        else
            kt.sq8_scan_ip(a_.data(), bias_, codes, n, d, out);
    }

    void
    scanMulti(const DistanceComputer *const *peers, std::size_t q_count,
              const std::uint8_t *codes, std::size_t n,
              const float *thresholds, float *const *out) const override
    {
        if (codec_.bits() != 8) {
            DistanceComputer::scanMulti(peers, q_count, codes, n,
                                        thresholds, out);
            return;
        }
        const std::size_t d = codec_.dim();
        const auto &kt = vecstore::simd::active();
        std::vector<const float *> a(q_count);
        for (std::size_t q = 0; q < q_count; ++q)
            a[q] = static_cast<const ScalarDistance *>(peers[q])->a_.data();
        if (metric_ == vecstore::Metric::L2) {
            // b_ (the per-dimension scale) is query-independent.
            kt.sq8_scan_l2_multi(a.data(), b_.data(), q_count, codes, n, d,
                                 out);
            return;
        }
        std::vector<float> biases(q_count);
        for (std::size_t q = 0; q < q_count; ++q) {
            biases[q] =
                static_cast<const ScalarDistance *>(peers[q])->bias_;
        }
        kt.sq8_scan_ip_multi(a.data(), biases.data(), q_count, codes, n, d,
                             out);
    }

  private:
    const ScalarCodec &codec_;
    vecstore::Metric metric_;
    vecstore::VecView query_;
    mutable std::vector<float> buffer_;
    std::vector<float> a_; ///< SQ8: q - vmin (L2) or q*scale (IP)
    std::vector<float> b_; ///< SQ8 L2: per-dimension scale
    float bias_ = 0.f;     ///< SQ8 IP: dot(q, vmin)
};

} // namespace

ScalarCodec::ScalarCodec(std::size_t dim, int bits) : dim_(dim), bits_(bits)
{
    HERMES_ASSERT(bits_ == 4 || bits_ == 8,
                  "ScalarCodec supports 4 or 8 bits, got ", bits_);
    HERMES_ASSERT(dim_ > 0, "ScalarCodec needs dim > 0");
    if (bits_ == 4) {
        HERMES_ASSERT(dim_ % 2 == 0, "SQ4 requires even dim, got ", dim_);
    }
}

std::size_t
ScalarCodec::codeSize() const
{
    return bits_ == 8 ? dim_ : dim_ / 2;
}

void
ScalarCodec::train(const vecstore::Matrix &data)
{
    HERMES_ASSERT(data.dim() == dim_, "train dim mismatch");
    HERMES_ASSERT(data.rows() > 0, "ScalarCodec: empty training set");

    vmin_.assign(dim_, std::numeric_limits<float>::max());
    std::vector<float> vmax(dim_, std::numeric_limits<float>::lowest());
    for (std::size_t i = 0; i < data.rows(); ++i) {
        auto row = data.row(i);
        for (std::size_t j = 0; j < dim_; ++j) {
            vmin_[j] = std::min(vmin_[j], row[j]);
            vmax[j] = std::max(vmax[j], row[j]);
        }
    }
    vdiff_.resize(dim_);
    for (std::size_t j = 0; j < dim_; ++j) {
        vdiff_[j] = vmax[j] - vmin_[j];
        if (vdiff_[j] <= 0.f)
            vdiff_[j] = 1e-20f; // constant dimension; decode to vmin
    }
    trained_ = true;
}

std::uint32_t
ScalarCodec::quantizeDim(std::size_t j, float x) const
{
    const float max_level = static_cast<float>(levels() - 1);
    float t = (x - vmin_[j]) / vdiff_[j] * max_level;
    t = std::clamp(t, 0.f, max_level);
    return static_cast<std::uint32_t>(t + 0.5f);
}

float
ScalarCodec::reconstruct(std::size_t j, std::uint32_t q) const
{
    const float max_level = static_cast<float>(levels() - 1);
    return vmin_[j] + vdiff_[j] * (static_cast<float>(q) / max_level);
}

void
ScalarCodec::encode(vecstore::VecView v, std::uint8_t *code) const
{
    HERMES_ASSERT(trained_, "ScalarCodec used before training");
    HERMES_ASSERT(v.size() == dim_, "encode dim mismatch");
    if (bits_ == 8) {
        for (std::size_t j = 0; j < dim_; ++j)
            code[j] = static_cast<std::uint8_t>(quantizeDim(j, v[j]));
        return;
    }
    for (std::size_t j = 0; j < dim_; j += 2) {
        std::uint32_t lo = quantizeDim(j, v[j]);
        std::uint32_t hi = quantizeDim(j + 1, v[j + 1]);
        code[j / 2] = static_cast<std::uint8_t>(lo | (hi << 4));
    }
}

void
ScalarCodec::decode(const std::uint8_t *code, vecstore::MutVecView out) const
{
    HERMES_ASSERT(trained_, "ScalarCodec used before training");
    HERMES_ASSERT(out.size() == dim_, "decode dim mismatch");
    if (bits_ == 8) {
        for (std::size_t j = 0; j < dim_; ++j)
            out[j] = reconstruct(j, code[j]);
        return;
    }
    for (std::size_t j = 0; j < dim_; j += 2) {
        std::uint8_t byte = code[j / 2];
        out[j] = reconstruct(j, byte & 0x0f);
        out[j + 1] = reconstruct(j + 1, byte >> 4);
    }
}

std::unique_ptr<DistanceComputer>
ScalarCodec::distanceComputer(vecstore::Metric metric,
                              vecstore::VecView query) const
{
    HERMES_ASSERT(trained_, "ScalarCodec used before training");
    return std::make_unique<ScalarDistance>(*this, metric, query);
}

std::string
ScalarCodec::name() const
{
    return bits_ == 8 ? "SQ8" : "SQ4";
}

void
ScalarCodec::save(util::BinaryWriter &w) const
{
    w.write<std::uint64_t>(dim_);
    w.write<std::int32_t>(bits_);
    w.write<std::uint8_t>(trained_ ? 1 : 0);
    w.writeVector(vmin_);
    w.writeVector(vdiff_);
}

void
ScalarCodec::load(util::BinaryReader &r)
{
    auto dim = r.read<std::uint64_t>();
    auto bits = r.read<std::int32_t>();
    if (dim != dim_ || bits != bits_)
        r.fail(util::FormatErrorCode::Corrupt,
               "ScalarCodec shape mismatch on load");
    trained_ = r.read<std::uint8_t>() != 0;
    vmin_ = r.readVector<float>();
    vdiff_ = r.readVector<float>();
    if (trained_ && (vmin_.size() != dim_ || vdiff_.size() != dim_))
        r.fail(util::FormatErrorCode::Corrupt,
               "ScalarCodec range tables have the wrong size");
}

} // namespace quant
} // namespace hermes
