#include "quant/opq_codec.hpp"

#include <algorithm>

#include "quant/linalg.hpp"
#include "util/logging.hpp"

namespace hermes {
namespace quant {

namespace {

/** Rotates the query once, then delegates to the inner PQ ADC computer. */
class RotatedDistance : public DistanceComputer
{
  public:
    RotatedDistance(std::vector<float> rotated_query,
                    std::unique_ptr<DistanceComputer> inner)
        : DistanceComputer(inner->codeSize()),
          rotated_query_(std::move(rotated_query)), inner_(std::move(inner))
    {
    }

    float
    operator()(const std::uint8_t *code) const override
    {
        return (*inner_)(code);
    }

    void
    scan(const std::uint8_t *codes, std::size_t n, float threshold,
         float *out) const override
    {
        inner_->scan(codes, n, threshold, out);
    }

    void
    scanMulti(const DistanceComputer *const *peers, std::size_t q_count,
              const std::uint8_t *codes, std::size_t n,
              const float *thresholds, float *const *out) const override
    {
        // Unwrap to the inner ADC computers so their scanMulti sweeps the
        // code list in query-major strips (rotation already happened at
        // construction; codes are plain PQ codes).
        std::vector<const DistanceComputer *> inner(q_count);
        for (std::size_t q = 0; q < q_count; ++q) {
            inner[q] =
                static_cast<const RotatedDistance *>(peers[q])->inner_.get();
        }
        inner[0]->scanMulti(inner.data(), q_count, codes, n, thresholds,
                            out);
    }

  private:
    std::vector<float> rotated_query_; // owns storage referenced by inner_
    std::unique_ptr<DistanceComputer> inner_;
};

} // namespace

OpqCodec::OpqCodec(std::size_t dim, std::size_t m, std::size_t iterations)
    : dim_(dim), iterations_(std::max<std::size_t>(iterations, 1)),
      pq_(dim, m)
{
}

void
OpqCodec::rotate(vecstore::VecView x, float *y) const
{
    linalg::vecmat(x.data(), rotation_.data(), y, dim_);
}

void
OpqCodec::train(const vecstore::Matrix &data)
{
    HERMES_ASSERT(data.dim() == dim_, "train dim mismatch");
    const std::size_t n = data.rows();

    rotation_ = linalg::randomRotation(dim_, 0x0b9c0de5ull);

    vecstore::Matrix rotated(n, dim_);
    std::vector<std::uint8_t> codes(pq_.codeSize());
    std::vector<float> recon(dim_);

    for (std::size_t iter = 0; iter < iterations_; ++iter) {
        // (1) Rotate the training data and fit PQ codebooks.
        for (std::size_t i = 0; i < n; ++i)
            rotate(data.row(i), rotated.row(i).data());
        pq_.train(rotated);

        if (iter + 1 == iterations_)
            break;

        // (2) Re-fit the rotation: minimize ||X R - Y||_F over orthogonal
        // R, where Y are the PQ reconstructions of X R. The minimizer is
        // the Procrustes solution for M = X^T Y (up to scaling), computed
        // here via the polar decomposition of M.
        std::vector<float> cross(dim_ * dim_, 0.f);
        for (std::size_t i = 0; i < n; ++i) {
            pq_.encode(rotated.row(i), codes.data());
            pq_.decode(codes.data(),
                       vecstore::MutVecView(recon.data(), dim_));
            auto x = data.row(i);
            for (std::size_t a = 0; a < dim_; ++a) {
                float xa = x[a];
                float *row = cross.data() + a * dim_;
                for (std::size_t b = 0; b < dim_; ++b)
                    row[b] += xa * recon[b];
            }
        }
        rotation_ = linalg::procrustes(cross, dim_);
    }
    trained_ = true;
}

void
OpqCodec::encode(vecstore::VecView v, std::uint8_t *code) const
{
    HERMES_ASSERT(trained_, "OpqCodec used before training");
    std::vector<float> rotated(dim_);
    rotate(v, rotated.data());
    pq_.encode(vecstore::VecView(rotated.data(), dim_), code);
}

void
OpqCodec::decode(const std::uint8_t *code, vecstore::MutVecView out) const
{
    HERMES_ASSERT(trained_, "OpqCodec used before training");
    // Decode in rotated space, then rotate back: x = y * R^T.
    std::vector<float> rotated(dim_);
    pq_.decode(code, vecstore::MutVecView(rotated.data(), dim_));
    auto rt = linalg::transpose(rotation_.data(), dim_);
    linalg::vecmat(rotated.data(), rt.data(), out.data(), dim_);
}

std::unique_ptr<DistanceComputer>
OpqCodec::distanceComputer(vecstore::Metric metric,
                           vecstore::VecView query) const
{
    HERMES_ASSERT(trained_, "OpqCodec used before training");
    // Rotation preserves L2 distances and dot products, so computing the
    // metric in rotated space against rotated-space codes is exact.
    std::vector<float> rotated(dim_);
    rotate(query, rotated.data());
    auto inner = pq_.distanceComputer(
        metric, vecstore::VecView(rotated.data(), dim_));
    return std::make_unique<RotatedDistance>(std::move(rotated),
                                             std::move(inner));
}

std::string
OpqCodec::name() const
{
    return "OPQ" + std::to_string(pq_.numSubquantizers());
}

void
OpqCodec::save(util::BinaryWriter &w) const
{
    w.write<std::uint64_t>(dim_);
    w.write<std::uint8_t>(trained_ ? 1 : 0);
    w.writeVector(rotation_);
    pq_.save(w);
}

void
OpqCodec::load(util::BinaryReader &r)
{
    auto dim = r.read<std::uint64_t>();
    if (dim != dim_)
        r.fail(util::FormatErrorCode::Corrupt,
               "OpqCodec dim mismatch on load");
    trained_ = r.read<std::uint8_t>() != 0;
    rotation_ = r.readVector<float>();
    if (trained_ && rotation_.size() != dim_ * dim_)
        r.fail(util::FormatErrorCode::Corrupt,
               "OpqCodec rotation matrix has the wrong size");
    pq_.load(r);
}

} // namespace quant
} // namespace hermes
