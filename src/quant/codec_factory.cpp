#include "quant/codec.hpp"

#include <cstdlib>

#include "quant/flat_codec.hpp"
#include "quant/opq_codec.hpp"
#include "quant/pq_codec.hpp"
#include "quant/scalar_codec.hpp"
#include "util/logging.hpp"

namespace hermes {
namespace quant {

namespace {

/** Parse the integer suffix of "PQ32" / "OPQ16"-style specs. */
std::size_t
parseSuffix(const std::string &spec, std::size_t prefix_len)
{
    if (spec.size() <= prefix_len) {
        HERMES_FATAL("codec spec '", spec, "' is missing a numeric suffix");
    }
    char *end = nullptr;
    long value = std::strtol(spec.c_str() + prefix_len, &end, 10);
    if (end == nullptr || *end != '\0' || value <= 0) {
        HERMES_FATAL("bad codec spec: '", spec, "'");
    }
    return static_cast<std::size_t>(value);
}

} // namespace

void
DistanceComputer::scan(const std::uint8_t *codes, std::size_t n,
                       float /*threshold*/, float *out) const
{
    // Generic fallback: one virtual call per code. Codecs override this
    // with blocked kernels; the threshold hint is unused here because
    // per-code evaluation is already exact.
    for (std::size_t i = 0; i < n; ++i)
        out[i] = (*this)(codes + i * code_size_);
}

void
DistanceComputer::scanMulti(const DistanceComputer *const *peers,
                            std::size_t q_count, const std::uint8_t *codes,
                            std::size_t n, const float *thresholds,
                            float *const *out) const
{
    // Query-major strips over the same code list: each strip re-reads
    // codes that the previous query just touched, so for list-sized
    // chunks the bytes come from cache rather than DRAM. This is the
    // batched path for table-driven codecs (PQ/OPQ ADC), whose per-query
    // state (the LUT) doesn't fuse across queries the way Flat/SQ8 do.
    for (std::size_t q = 0; q < q_count; ++q)
        peers[q]->scan(codes, n, thresholds[q], out[q]);
}

bool
codecSpecValid(const std::string &spec, std::size_t dim)
{
    if (dim == 0)
        return false;
    if (spec == "Flat" || spec == "SQ8" || spec == "SQ4")
        return true;
    std::size_t prefix_len = 0;
    if (spec.rfind("OPQ", 0) == 0)
        prefix_len = 3;
    else if (spec.rfind("PQ", 0) == 0)
        prefix_len = 2;
    else
        return false;
    if (spec.size() <= prefix_len)
        return false;
    char *end = nullptr;
    long m = std::strtol(spec.c_str() + prefix_len, &end, 10);
    if (end == nullptr || *end != '\0' || m <= 0)
        return false;
    // Mirrors the PqCodec/OpqCodec constructor contract.
    return dim % static_cast<std::size_t>(m) == 0;
}

std::unique_ptr<Codec>
makeCodec(const std::string &spec, std::size_t dim)
{
    if (spec == "Flat")
        return std::make_unique<FlatCodec>(dim);
    if (spec == "SQ8")
        return std::make_unique<ScalarCodec>(dim, 8);
    if (spec == "SQ4")
        return std::make_unique<ScalarCodec>(dim, 4);
    if (spec.rfind("OPQ", 0) == 0)
        return std::make_unique<OpqCodec>(dim, parseSuffix(spec, 3));
    if (spec.rfind("PQ", 0) == 0)
        return std::make_unique<PqCodec>(dim, parseSuffix(spec, 2));
    HERMES_FATAL("unknown codec spec: '", spec,
                 "' (expected Flat, SQ8, SQ4, PQ<M> or OPQ<M>)");
}

} // namespace quant
} // namespace hermes
