/**
 * @file
 * Small dense linear algebra for OPQ rotation training.
 *
 * Everything here operates on square d x d row-major matrices stored in
 * std::vector<float>; sizes stay small (d <= a few hundred), so simple
 * O(d^3) algorithms are appropriate.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hermes {
namespace quant {
namespace linalg {

/** C = A * B, all d x d row-major. */
void matmul(const float *a, const float *b, float *c, std::size_t d);

/** C = A^T * B, all d x d row-major. */
void matmulTn(const float *a, const float *b, float *c, std::size_t d);

/** Out-of-place transpose of a d x d matrix. */
std::vector<float> transpose(const float *a, std::size_t d);

/** y = x * A for a row vector x (1 x d) and d x d matrix A. */
void vecmat(const float *x, const float *a, float *y, std::size_t d);

/** Random orthonormal d x d matrix (Gram–Schmidt of Gaussian columns). */
std::vector<float> randomRotation(std::size_t d, std::uint64_t seed);

/**
 * Cyclic Jacobi eigendecomposition of a symmetric d x d matrix.
 *
 * @param a           Symmetric input (row-major), destroyed.
 * @param eigenvalues Output eigenvalues (unsorted).
 * @param eigenvectors Output column eigenvectors as a d x d matrix
 *                     (column j is the eigenvector of eigenvalues[j]).
 * @param d           Dimension.
 */
void jacobiEigenSymmetric(std::vector<float> &a,
                          std::vector<float> &eigenvalues,
                          std::vector<float> &eigenvectors,
                          std::size_t d);

/**
 * Orthogonal Procrustes: the orthogonal matrix R minimizing ||M - R||_F,
 * i.e. R = U V^T where M = U S V^T.
 *
 * Computed via eigendecompositions of M^T M and M M^T, which is adequate
 * for the well-conditioned cross-covariance matrices OPQ produces.
 */
std::vector<float> procrustes(const std::vector<float> &m, std::size_t d);

/** Max |A^T A - I| entry — orthogonality defect used by tests. */
float orthogonalityError(const float *a, std::size_t d);

} // namespace linalg
} // namespace quant
} // namespace hermes
