#include "quant/linalg.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace hermes {
namespace quant {
namespace linalg {

void
matmul(const float *a, const float *b, float *c, std::size_t d)
{
    for (std::size_t i = 0; i < d; ++i) {
        float *crow = c + i * d;
        std::fill(crow, crow + d, 0.f);
        for (std::size_t k = 0; k < d; ++k) {
            float aik = a[i * d + k];
            const float *brow = b + k * d;
            for (std::size_t j = 0; j < d; ++j)
                crow[j] += aik * brow[j];
        }
    }
}

void
matmulTn(const float *a, const float *b, float *c, std::size_t d)
{
    std::fill(c, c + d * d, 0.f);
    for (std::size_t k = 0; k < d; ++k) {
        const float *arow = a + k * d;
        const float *brow = b + k * d;
        for (std::size_t i = 0; i < d; ++i) {
            float aki = arow[i];
            float *crow = c + i * d;
            for (std::size_t j = 0; j < d; ++j)
                crow[j] += aki * brow[j];
        }
    }
}

std::vector<float>
transpose(const float *a, std::size_t d)
{
    std::vector<float> t(d * d);
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = 0; j < d; ++j)
            t[j * d + i] = a[i * d + j];
    return t;
}

void
vecmat(const float *x, const float *a, float *y, std::size_t d)
{
    std::fill(y, y + d, 0.f);
    for (std::size_t i = 0; i < d; ++i) {
        float xi = x[i];
        const float *arow = a + i * d;
        for (std::size_t j = 0; j < d; ++j)
            y[j] += xi * arow[j];
    }
}

namespace {

/** Orthonormalize the rows of @p m in place via modified Gram–Schmidt. */
void
gramSchmidtRows(std::vector<float> &m, std::size_t d, util::Rng &rng)
{
    for (std::size_t i = 0; i < d; ++i) {
        float *row = m.data() + i * d;
        for (std::size_t pass = 0; pass < 2; ++pass) {
            for (std::size_t j = 0; j < i; ++j) {
                const float *prev = m.data() + j * d;
                float proj = 0.f;
                for (std::size_t k = 0; k < d; ++k)
                    proj += row[k] * prev[k];
                for (std::size_t k = 0; k < d; ++k)
                    row[k] -= proj * prev[k];
            }
        }
        float norm = 0.f;
        for (std::size_t k = 0; k < d; ++k)
            norm += row[k] * row[k];
        if (norm < 1e-12f) {
            // Degenerate direction: replace with a fresh random vector and
            // redo this row.
            for (std::size_t k = 0; k < d; ++k)
                row[k] = static_cast<float>(rng.gaussian());
            --i;
            continue;
        }
        float inv = 1.f / std::sqrt(norm);
        for (std::size_t k = 0; k < d; ++k)
            row[k] *= inv;
    }
}

} // namespace

std::vector<float>
randomRotation(std::size_t d, std::uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<float> m(d * d);
    for (auto &v : m)
        v = static_cast<float>(rng.gaussian());
    gramSchmidtRows(m, d, rng);
    return m;
}

void
jacobiEigenSymmetric(std::vector<float> &a, std::vector<float> &eigenvalues,
                     std::vector<float> &eigenvectors, std::size_t d)
{
    HERMES_ASSERT(a.size() == d * d, "jacobi: bad matrix size");

    eigenvectors.assign(d * d, 0.f);
    for (std::size_t i = 0; i < d; ++i)
        eigenvectors[i * d + i] = 1.f;

    const std::size_t max_sweeps = 30;
    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        float off = 0.f;
        for (std::size_t p = 0; p < d; ++p)
            for (std::size_t q = p + 1; q < d; ++q)
                off += a[p * d + q] * a[p * d + q];
        if (off < 1e-18f)
            break;

        for (std::size_t p = 0; p < d; ++p) {
            for (std::size_t q = p + 1; q < d; ++q) {
                float apq = a[p * d + q];
                if (std::fabs(apq) < 1e-20f)
                    continue;
                float app = a[p * d + p];
                float aqq = a[q * d + q];
                float theta = (aqq - app) / (2.f * apq);
                float t = (theta >= 0.f ? 1.f : -1.f) /
                          (std::fabs(theta) +
                           std::sqrt(theta * theta + 1.f));
                float c = 1.f / std::sqrt(t * t + 1.f);
                float s = t * c;

                // Rotate rows/cols p and q of A.
                for (std::size_t k = 0; k < d; ++k) {
                    float akp = a[k * d + p];
                    float akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < d; ++k) {
                    float apk = a[p * d + k];
                    float aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for (std::size_t k = 0; k < d; ++k) {
                    float vkp = eigenvectors[k * d + p];
                    float vkq = eigenvectors[k * d + q];
                    eigenvectors[k * d + p] = c * vkp - s * vkq;
                    eigenvectors[k * d + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    eigenvalues.resize(d);
    for (std::size_t i = 0; i < d; ++i)
        eigenvalues[i] = a[i * d + i];
}

std::vector<float>
procrustes(const std::vector<float> &m, std::size_t d)
{
    HERMES_ASSERT(m.size() == d * d, "procrustes: bad matrix size");

    // Polar decomposition: R = M (M^T M)^{-1/2}.
    std::vector<float> mtm(d * d);
    matmulTn(m.data(), m.data(), mtm.data(), d);

    std::vector<float> eigenvalues, v;
    jacobiEigenSymmetric(mtm, eigenvalues, v, d);

    // Build (M^T M)^{-1/2} = V diag(1/sqrt(lambda)) V^T.
    std::vector<float> scaled(d * d);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            float lambda = std::max(eigenvalues[j], 1e-12f);
            scaled[i * d + j] = v[i * d + j] / std::sqrt(lambda);
        }
    }
    std::vector<float> inv_sqrt(d * d);
    auto vt = transpose(v.data(), d);
    matmul(scaled.data(), vt.data(), inv_sqrt.data(), d);

    std::vector<float> r(d * d);
    matmul(m.data(), inv_sqrt.data(), r.data(), d);

    // Clean up numerical drift so R stays strictly orthogonal.
    util::Rng rng(0x0504c1ea4u);
    gramSchmidtRows(r, d, rng);
    return r;
}

float
orthogonalityError(const float *a, std::size_t d)
{
    std::vector<float> ata(d * d);
    matmulTn(a, a, ata.data(), d);
    float worst = 0.f;
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            float target = i == j ? 1.f : 0.f;
            worst = std::max(worst, std::fabs(ata[i * d + j] - target));
        }
    }
    return worst;
}

} // namespace linalg
} // namespace quant
} // namespace hermes
