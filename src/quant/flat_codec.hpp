/**
 * @file
 * Identity codec: stores raw float32 (Table 1 "Flat", 4·d bytes).
 */

#pragma once

#include "quant/codec.hpp"

namespace hermes {
namespace quant {

/** Raw float32 storage; distances are exact. */
class FlatCodec : public Codec
{
  public:
    explicit FlatCodec(std::size_t dim);

    std::size_t dim() const override { return dim_; }
    std::size_t codeSize() const override { return dim_ * sizeof(float); }
    bool isTrained() const override { return true; }
    void train(const vecstore::Matrix &data) override;
    void encode(vecstore::VecView v, std::uint8_t *code) const override;
    void decode(const std::uint8_t *code,
                vecstore::MutVecView out) const override;
    std::unique_ptr<DistanceComputer>
    distanceComputer(vecstore::Metric metric,
                     vecstore::VecView query) const override;
    std::string name() const override { return "Flat"; }
    void save(util::BinaryWriter &w) const override;
    void load(util::BinaryReader &r) override;

  private:
    std::size_t dim_;
};

} // namespace quant
} // namespace hermes
