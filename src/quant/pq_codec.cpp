#include "quant/pq_codec.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>

#include "cluster/kmeans.hpp"
#include "util/logging.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/simd_dispatch.hpp"

namespace hermes {
namespace quant {

namespace {

/** ADC computer: M table lookups + adds per code. */
class AdcDistance : public DistanceComputer
{
  public:
    AdcDistance(std::vector<float> table, std::size_t m)
        : DistanceComputer(m), table_(std::move(table)), m_(m)
    {
    }

    float
    operator()(const std::uint8_t *code) const override
    {
        float acc = 0.f;
        const float *table = table_.data();
        for (std::size_t sub = 0; sub < m_; ++sub)
            acc += table[sub * PqCodec::kSubCodebookSize + code[sub]];
        return acc;
    }

    void
    scan(const std::uint8_t *codes, std::size_t n, float /*threshold*/,
         float *out) const override
    {
        // Four codes in flight: the table loads for the four rows are
        // independent, so out-of-order execution overlaps the gather
        // latency that serializes the one-code-at-a-time loop. The
        // prefetch pulls the next code block while this one is summed.
        const float *table = table_.data();
        const std::size_t m = m_;
        std::size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            const std::uint8_t *c0 = codes + i * m;
            const std::uint8_t *c1 = c0 + m;
            const std::uint8_t *c2 = c1 + m;
            const std::uint8_t *c3 = c2 + m;
            __builtin_prefetch(c0 + 4 * m, 0, 3);
            __builtin_prefetch(c0 + 4 * m + 64, 0, 3);
            float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
            for (std::size_t sub = 0; sub < m; ++sub) {
                const float *row =
                    table + sub * PqCodec::kSubCodebookSize;
                a0 += row[c0[sub]];
                a1 += row[c1[sub]];
                a2 += row[c2[sub]];
                a3 += row[c3[sub]];
            }
            out[i] = a0;
            out[i + 1] = a1;
            out[i + 2] = a2;
            out[i + 3] = a3;
        }
        for (; i < n; ++i)
            out[i] = (*this)(codes + i * m);
    }

    void
    scanMulti(const DistanceComputer *const *peers, std::size_t q_count,
              const std::uint8_t *codes, std::size_t n,
              const float *thresholds, float *const *out) const override
    {
        // Short lists fall back to the query-major strip default: the
        // transposed table below costs m*256*q_count writes to build,
        // which only pays once the batch streams enough codes to
        // amortize it. Both paths are bitwise identical to per-query
        // scan(), so the cutover is a pure performance heuristic.
        if (q_count < 2 || n < PqCodec::kSubCodebookSize) {
            DistanceComputer::scanMulti(peers, q_count, codes, n,
                                        thresholds, out);
            return;
        }
        // Query-transposed tables in padded chunk-major layout (see the
        // lut_accum_multi contract in simd_dispatch.hpp): queries are
        // grouped in chunks of 8 lanes, so one code byte resolves to one
        // contiguous 8-float row and each chunk's table is a compact
        // cache-resident block — the per-query scan instead does m
        // dependent scalar gathers per code. Per query the accumulation
        // is still one chain in ascending sub order over copied table
        // values, so scores are bitwise identical to peers[q]->scan().
        //
        // The batch executor calls scanMulti once per probed list with
        // the same peer set, so the transpose is cached on this computer
        // and keyed by the peers' unique ids (addresses can be reused
        // across batches; ids cannot). Computers are per-query state
        // already — the mutable cache keeps them single-thread objects,
        // it does not make a previously shareable object unshareable.
        const std::size_t m = m_;
        std::vector<std::uint64_t> key(q_count);
        for (std::size_t q = 0; q < q_count; ++q)
            key[q] = static_cast<const AdcDistance *>(peers[q])->id_;
        if (key != tkey_) {
            const std::size_t table_len = m * PqCodec::kSubCodebookSize;
            const std::size_t chunks = (q_count + 7) / 8;
            tlut_.assign(chunks * table_len * 8, 0.f);
            for (std::size_t q = 0; q < q_count; ++q) {
                const float *src = static_cast<const AdcDistance *>(peers[q])
                                       ->table_.data();
                float *dst = tlut_.data() + (q / 8) * table_len * 8 + q % 8;
                for (std::size_t idx = 0; idx < table_len; ++idx)
                    dst[idx * 8] = src[idx];
            }
            tkey_ = std::move(key);
        }
        vecstore::simd::active().lut_accum_multi(
            tlut_.data(), PqCodec::kSubCodebookSize, q_count, codes, n, m,
            out);
    }

  private:
    std::vector<float> table_;
    std::size_t m_;
    std::uint64_t id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
    static std::atomic<std::uint64_t> next_id_;
    mutable std::vector<std::uint64_t> tkey_; ///< peers of cached tlut_
    mutable std::vector<float> tlut_;         ///< query-transposed table
};

std::atomic<std::uint64_t> AdcDistance::next_id_{1};

} // namespace

PqCodec::PqCodec(std::size_t dim, std::size_t m)
    : dim_(dim), m_(m), dsub_(m ? dim / m : 0)
{
    HERMES_ASSERT(m_ > 0, "PQ needs at least one subquantizer");
    HERMES_ASSERT(dim_ % m_ == 0, "PQ subquantizers (", m_,
                  ") must divide dim (", dim_, ")");
}

void
PqCodec::train(const vecstore::Matrix &data)
{
    HERMES_ASSERT(data.dim() == dim_, "train dim mismatch");
    HERMES_ASSERT(data.rows() >= kSubCodebookSize,
                  "PQ training needs >= 256 points, got ", data.rows());

    codebooks_.assign(m_ * kSubCodebookSize * dsub_, 0.f);

    // Train one K-means per subspace on the projected training data.
    for (std::size_t sub = 0; sub < m_; ++sub) {
        vecstore::Matrix slice(data.rows(), dsub_);
        for (std::size_t i = 0; i < data.rows(); ++i) {
            auto src = data.row(i);
            auto dst = slice.row(i);
            for (std::size_t j = 0; j < dsub_; ++j)
                dst[j] = src[sub * dsub_ + j];
        }
        cluster::KMeansConfig config;
        config.k = kSubCodebookSize;
        config.max_iterations = 12;
        config.seed = 0xC0DEB00Cull + sub;
        auto run = cluster::kmeans(slice, config);
        float *dst = codebooks_.data() + sub * kSubCodebookSize * dsub_;
        std::copy(run.centroids.data(),
                  run.centroids.data() + kSubCodebookSize * dsub_, dst);
    }
    trained_ = true;
}

const float *
PqCodec::subCentroid(std::size_t m, std::size_t c) const
{
    return codebooks_.data() + (m * kSubCodebookSize + c) * dsub_;
}

void
PqCodec::encode(vecstore::VecView v, std::uint8_t *code) const
{
    HERMES_ASSERT(trained_, "PqCodec used before training");
    HERMES_ASSERT(v.size() == dim_, "encode dim mismatch");
    for (std::size_t sub = 0; sub < m_; ++sub) {
        const float *x = v.data() + sub * dsub_;
        float best = std::numeric_limits<float>::max();
        std::size_t best_c = 0;
        for (std::size_t c = 0; c < kSubCodebookSize; ++c) {
            float dd = vecstore::l2Sq(x, subCentroid(sub, c), dsub_);
            if (dd < best) {
                best = dd;
                best_c = c;
            }
        }
        code[sub] = static_cast<std::uint8_t>(best_c);
    }
}

void
PqCodec::decode(const std::uint8_t *code, vecstore::MutVecView out) const
{
    HERMES_ASSERT(trained_, "PqCodec used before training");
    HERMES_ASSERT(out.size() == dim_, "decode dim mismatch");
    for (std::size_t sub = 0; sub < m_; ++sub) {
        const float *c = subCentroid(sub, code[sub]);
        std::copy(c, c + dsub_, out.data() + sub * dsub_);
    }
}

void
PqCodec::computeAdcTable(vecstore::Metric metric, vecstore::VecView query,
                         float *table) const
{
    HERMES_ASSERT(trained_, "PqCodec used before training");
    // Each subquantizer's 256 centroids are contiguous, so table rows are
    // one blocked-kernel call against the codebook slab.
    for (std::size_t sub = 0; sub < m_; ++sub) {
        const float *q = query.data() + sub * dsub_;
        float *row = table + sub * kSubCodebookSize;
        vecstore::distanceBatch(metric, q, subCentroid(sub, 0),
                                kSubCodebookSize, dsub_, row);
    }
}

std::unique_ptr<DistanceComputer>
PqCodec::distanceComputer(vecstore::Metric metric,
                          vecstore::VecView query) const
{
    std::vector<float> table(m_ * kSubCodebookSize);
    computeAdcTable(metric, query, table.data());
    return std::make_unique<AdcDistance>(std::move(table), m_);
}

std::string
PqCodec::name() const
{
    return "PQ" + std::to_string(m_);
}

void
PqCodec::save(util::BinaryWriter &w) const
{
    w.write<std::uint64_t>(dim_);
    w.write<std::uint64_t>(m_);
    w.write<std::uint8_t>(trained_ ? 1 : 0);
    w.writeVector(codebooks_);
}

void
PqCodec::load(util::BinaryReader &r)
{
    auto dim = r.read<std::uint64_t>();
    auto m = r.read<std::uint64_t>();
    if (dim != dim_ || m != m_)
        r.fail(util::FormatErrorCode::Corrupt,
               "PqCodec shape mismatch on load");
    trained_ = r.read<std::uint8_t>() != 0;
    codebooks_ = r.readVector<float>();
    // m_ sub-codebooks of kSubCodebookSize centroids of dim_/m_ floats.
    if (trained_ && codebooks_.size() != kSubCodebookSize * dim_)
        r.fail(util::FormatErrorCode::Corrupt,
               "PqCodec codebooks have the wrong size");
}

} // namespace quant
} // namespace hermes
