#include "quant/flat_codec.hpp"

#include <cstring>
#include <vector>

#include "util/logging.hpp"
#include "vecstore/distance.hpp"

namespace hermes {
namespace quant {

namespace {

class FlatDistance : public DistanceComputer
{
  public:
    FlatDistance(vecstore::Metric metric, vecstore::VecView query)
        : DistanceComputer(query.size() * sizeof(float)), metric_(metric),
          query_(query)
    {
    }

    float
    operator()(const std::uint8_t *code) const override
    {
        const float *v = reinterpret_cast<const float *>(code);
        return vecstore::distance(metric_, query_.data(), v, query_.size());
    }

    void
    scan(const std::uint8_t *codes, std::size_t n, float /*threshold*/,
         float *out) const override
    {
        // Flat codes are raw float rows, so the scan is exactly the
        // blocked dense kernel. Code offsets are multiples of 4*dim
        // bytes inside an allocator-aligned buffer, so the float
        // reinterpretation is aligned.
        vecstore::distanceBatch(metric_, query_.data(),
                                reinterpret_cast<const float *>(codes), n,
                                query_.size(), out);
    }

    void
    scanMulti(const DistanceComputer *const *peers, std::size_t q_count,
              const std::uint8_t *codes, std::size_t n,
              const float * /*thresholds*/,
              float *const *out) const override
    {
        std::vector<const float *> queries(q_count);
        for (std::size_t q = 0; q < q_count; ++q) {
            queries[q] =
                static_cast<const FlatDistance *>(peers[q])->query_.data();
        }
        vecstore::distanceBatchMulti(
            metric_, queries.data(), q_count,
            reinterpret_cast<const float *>(codes), n, query_.size(), out);
    }

  private:
    vecstore::Metric metric_;
    vecstore::VecView query_;
};

} // namespace

FlatCodec::FlatCodec(std::size_t dim) : dim_(dim)
{
    HERMES_ASSERT(dim_ > 0, "FlatCodec needs dim > 0");
}

void
FlatCodec::train(const vecstore::Matrix &)
{
}

void
FlatCodec::encode(vecstore::VecView v, std::uint8_t *code) const
{
    HERMES_ASSERT(v.size() == dim_, "encode dim mismatch");
    std::memcpy(code, v.data(), codeSize());
}

void
FlatCodec::decode(const std::uint8_t *code, vecstore::MutVecView out) const
{
    HERMES_ASSERT(out.size() == dim_, "decode dim mismatch");
    std::memcpy(out.data(), code, codeSize());
}

std::unique_ptr<DistanceComputer>
FlatCodec::distanceComputer(vecstore::Metric metric,
                            vecstore::VecView query) const
{
    return std::make_unique<FlatDistance>(metric, query);
}

void
FlatCodec::save(util::BinaryWriter &w) const
{
    w.write<std::uint64_t>(dim_);
}

void
FlatCodec::load(util::BinaryReader &r)
{
    auto dim = r.read<std::uint64_t>();
    if (dim != dim_)
        r.fail(util::FormatErrorCode::Corrupt,
               "FlatCodec dim mismatch on load");
}

} // namespace quant
} // namespace hermes
