/**
 * @file
 * Scalar quantization (Table 1 "SQ8"/"SQ4").
 *
 * Each dimension is linearly mapped to a b-bit integer using per-dimension
 * [min, max] ranges fit at train time. SQ8 is the codec the paper selects
 * for all at-scale experiments: 4x smaller than Flat with ~0.94 recall.
 */

#pragma once

#include <vector>

#include "quant/codec.hpp"

namespace hermes {
namespace quant {

/** Per-dimension b-bit scalar quantizer (b in {4, 8}). */
class ScalarCodec : public Codec
{
  public:
    /**
     * @param dim  Embedding dimensionality (even for 4-bit).
     * @param bits Bits per dimension: 4 or 8.
     */
    ScalarCodec(std::size_t dim, int bits);

    std::size_t dim() const override { return dim_; }
    std::size_t codeSize() const override;
    bool isTrained() const override { return trained_; }
    void train(const vecstore::Matrix &data) override;
    void encode(vecstore::VecView v, std::uint8_t *code) const override;
    void decode(const std::uint8_t *code,
                vecstore::MutVecView out) const override;
    std::unique_ptr<DistanceComputer>
    distanceComputer(vecstore::Metric metric,
                     vecstore::VecView query) const override;
    std::string name() const override;
    void save(util::BinaryWriter &w) const override;
    void load(util::BinaryReader &r) override;

    int bits() const { return bits_; }

    /** Per-dimension range minima (valid after train). */
    const std::vector<float> &mins() const { return vmin_; }

    /** Per-dimension range widths (valid after train). */
    const std::vector<float> &widths() const { return vdiff_; }

    /** Quantization levels per dimension (2^bits). */
    std::size_t levels() const { return std::size_t(1) << bits_; }

    /** Dequantized value of level @p q in dimension @p j. */
    float reconstruct(std::size_t j, std::uint32_t q) const;

  private:
    std::uint32_t quantizeDim(std::size_t j, float x) const;

    std::size_t dim_;
    int bits_;
    bool trained_ = false;
    std::vector<float> vmin_;  ///< Per-dimension range minimum.
    std::vector<float> vdiff_; ///< Per-dimension range width.
};

} // namespace quant
} // namespace hermes
