/**
 * @file
 * Vector codec interface (Table 1 of the paper).
 *
 * A codec compresses float32 embeddings into fixed-size codes and answers
 * asymmetric distance queries (float query vs compressed database vector).
 * IVF lists store codes, so the codec choice sets both the index's memory
 * footprint and its scan cost.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/serialize.hpp"
#include "vecstore/matrix.hpp"
#include "vecstore/types.hpp"

namespace hermes {
namespace quant {

/**
 * Per-query distance evaluator over codes.
 *
 * Codecs return a specialized computer (e.g. PQ lookup tables) so the hot
 * scan loop does no virtual dispatch per dimension — and, via scan(), no
 * virtual dispatch per vector either.
 */
class DistanceComputer
{
  public:
    /** @param code_size Bytes per encoded vector (the scan stride). */
    explicit DistanceComputer(std::size_t code_size)
        : code_size_(code_size)
    {
    }

    virtual ~DistanceComputer() = default;

    /** Distance ("smaller = closer") from the bound query to @p code. */
    virtual float operator()(const std::uint8_t *code) const = 0;

    /**
     * Batched scan over @p n contiguous codes (stride = codeSize bytes):
     * writes out[i] = distance to code i.
     *
     * Contract: @p threshold is a pruning hint. An implementation may
     * write any value strictly greater than @p threshold for a row whose
     * exact distance provably exceeds it, so callers must treat
     * out[i] > threshold as "not a candidate" rather than as an exact
     * distance. Pass +inf (TopK::worst() before the heap fills) to
     * request exact scores for every row. The default implementation
     * loops over operator(); codecs override it with blocked kernels.
     */
    virtual void scan(const std::uint8_t *codes, std::size_t n,
                      float threshold, float *out) const;

    /**
     * Multi-query scan: evaluate @p q_count computers over the same code
     * list in one pass, writing out[q][i] = peers[q]'s distance to code i.
     *
     * @p peers are computers produced by the *same* codec under the same
     * metric (peers[q] == this for some q is allowed but not required);
     * the call is made on peers[0]'s dynamic type. @p thresholds carries
     * one pruning hint per query with the same contract as scan(). Scores
     * per query are bitwise identical to peers[q]->scan(...): the default
     * loops the single-query scans in query-major strips (the codes stay
     * cache-resident between strips), and Flat/SQ8 override with fused
     * multi-query kernels.
     */
    virtual void scanMulti(const DistanceComputer *const *peers,
                           std::size_t q_count, const std::uint8_t *codes,
                           std::size_t n, const float *thresholds,
                           float *const *out) const;

    /** Bytes per encoded vector. */
    std::size_t codeSize() const { return code_size_; }

  protected:
    std::size_t code_size_;
};

/** Abstract vector codec. */
class Codec
{
  public:
    virtual ~Codec() = default;

    /** Embedding dimensionality. */
    virtual std::size_t dim() const = 0;

    /** Bytes per encoded vector. */
    virtual std::size_t codeSize() const = 0;

    /** True once train() has run (or training is unnecessary). */
    virtual bool isTrained() const = 0;

    /** Fit codec parameters on a representative sample. */
    virtual void train(const vecstore::Matrix &data) = 0;

    /** Encode one vector into codeSize() bytes at @p code. */
    virtual void encode(vecstore::VecView v, std::uint8_t *code) const = 0;

    /** Decode codeSize() bytes into a float vector. */
    virtual void decode(const std::uint8_t *code,
                        vecstore::MutVecView out) const = 0;

    /**
     * Build a distance computer for @p query under @p metric.
     * The view must outlive the computer.
     */
    virtual std::unique_ptr<DistanceComputer>
    distanceComputer(vecstore::Metric metric,
                     vecstore::VecView query) const = 0;

    /** Codec spec name, e.g. "SQ8", "PQ32". */
    virtual std::string name() const = 0;

    /** Serialize codec parameters. */
    virtual void save(util::BinaryWriter &w) const = 0;

    /** Deserialize codec parameters (must match constructed shape). */
    virtual void load(util::BinaryReader &r) = 0;
};

/**
 * Construct a codec from a spec string: "Flat", "SQ8", "SQ4", "PQ<M>" or
 * "OPQ<M>" where M divides the dimensionality.
 *
 * @param spec Codec spec.
 * @param dim  Embedding dimensionality.
 */
std::unique_ptr<Codec> makeCodec(const std::string &spec, std::size_t dim);

/**
 * True when makeCodec(spec, dim) would succeed. makeCodec treats a bad
 * spec as a fatal programming error; callers deserializing untrusted
 * bytes (index/ivf_format) must gate on this first so a hostile file
 * produces a typed format error instead of process death.
 */
bool codecSpecValid(const std::string &spec, std::size_t dim);

} // namespace quant
} // namespace hermes
