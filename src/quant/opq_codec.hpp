/**
 * @file
 * Optimized Product Quantization (Table 1 "OPQ<M>").
 *
 * OPQ learns an orthogonal rotation R that redistributes variance across
 * PQ subspaces before quantization, reducing reconstruction error at the
 * same code size. Training alternates between (1) fitting PQ codebooks on
 * the rotated data and (2) solving the orthogonal Procrustes problem for
 * the rotation that best maps data onto its reconstructions.
 */

#pragma once

#include "quant/pq_codec.hpp"

namespace hermes {
namespace quant {

/** Rotation + PQ codec. */
class OpqCodec : public Codec
{
  public:
    /**
     * @param dim        Embedding dimensionality.
     * @param m          Number of PQ subquantizers (must divide dim).
     * @param iterations Alternating optimization rounds.
     */
    OpqCodec(std::size_t dim, std::size_t m, std::size_t iterations = 4);

    std::size_t dim() const override { return dim_; }
    std::size_t codeSize() const override { return pq_.codeSize(); }
    bool isTrained() const override { return trained_; }
    void train(const vecstore::Matrix &data) override;
    void encode(vecstore::VecView v, std::uint8_t *code) const override;
    void decode(const std::uint8_t *code,
                vecstore::MutVecView out) const override;
    std::unique_ptr<DistanceComputer>
    distanceComputer(vecstore::Metric metric,
                     vecstore::VecView query) const override;
    std::string name() const override;
    void save(util::BinaryWriter &w) const override;
    void load(util::BinaryReader &r) override;

    /** The learned rotation (d x d row-major); rows are orthonormal. */
    const std::vector<float> &rotation() const { return rotation_; }

  private:
    /** y = x * R (apply rotation to a row vector). */
    void rotate(vecstore::VecView x, float *y) const;

    std::size_t dim_;
    std::size_t iterations_;
    bool trained_ = false;
    PqCodec pq_;
    std::vector<float> rotation_;
};

} // namespace quant
} // namespace hermes
