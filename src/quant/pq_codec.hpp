/**
 * @file
 * Product Quantization (Jégou et al., 2010; Table 1 "PQ<M>").
 *
 * The vector is split into M contiguous subspaces of d/M dims; each
 * subspace is vector-quantized with its own 256-entry codebook, giving
 * M bytes per vector. Queries use asymmetric distance computation (ADC):
 * a per-query M x 256 lookup table turns each scan step into M table
 * lookups and adds.
 */

#pragma once

#include <vector>

#include "quant/codec.hpp"

namespace hermes {
namespace quant {

/** Product quantizer with 8-bit sub-codes. */
class PqCodec : public Codec
{
  public:
    /**
     * @param dim Embedding dimensionality.
     * @param m   Number of subquantizers; must divide dim.
     */
    PqCodec(std::size_t dim, std::size_t m);

    std::size_t dim() const override { return dim_; }
    std::size_t codeSize() const override { return m_; }
    bool isTrained() const override { return trained_; }
    void train(const vecstore::Matrix &data) override;
    void encode(vecstore::VecView v, std::uint8_t *code) const override;
    void decode(const std::uint8_t *code,
                vecstore::MutVecView out) const override;
    std::unique_ptr<DistanceComputer>
    distanceComputer(vecstore::Metric metric,
                     vecstore::VecView query) const override;
    std::string name() const override;
    void save(util::BinaryWriter &w) const override;
    void load(util::BinaryReader &r) override;

    std::size_t numSubquantizers() const { return m_; }
    std::size_t subDim() const { return dsub_; }
    static constexpr std::size_t kSubCodebookSize = 256;

    /** Centroid @p c of subquantizer @p m (dsub floats). */
    const float *subCentroid(std::size_t m, std::size_t c) const;

    /**
     * Fill a caller-provided M x 256 ADC table for @p query.
     * Entries are squared L2 partials (L2) or negated dot partials (IP).
     */
    void computeAdcTable(vecstore::Metric metric, vecstore::VecView query,
                         float *table) const;

  private:
    std::size_t dim_;
    std::size_t m_;
    std::size_t dsub_;
    bool trained_ = false;

    /** Codebooks: m_ * 256 * dsub_ floats, subquantizer-major. */
    std::vector<float> codebooks_;
};

} // namespace quant
} // namespace hermes
