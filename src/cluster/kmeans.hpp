/**
 * @file
 * Lloyd's K-means with seeded initialization, used for:
 *   - IVF coarse quantizer training (nlist cells),
 *   - Product Quantization codebooks,
 *   - Hermes datastore partitioning (Section 4.1 of the paper).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "vecstore/matrix.hpp"
#include "vecstore/types.hpp"

namespace hermes {

namespace util {
class ThreadPool;
} // namespace util

namespace cluster {

/** K-means configuration. */
struct KMeansConfig
{
    /** Number of centroids. */
    std::size_t k = 8;

    /** Maximum Lloyd iterations. */
    std::size_t max_iterations = 25;

    /** Stop when the relative objective improvement drops below this. */
    double tolerance = 1e-4;

    /** PRNG seed for centroid initialization. */
    std::uint64_t seed = 1;

    /** Use k-means++ seeding instead of uniform random rows. */
    bool use_kmeanspp = true;

    /**
     * Train on at most this many points (0 = use all). Sub-sampling is the
     * paper's trick for cheap multi-seed imbalance exploration (§4.1).
     */
    std::size_t max_training_points = 0;
};

/** Result of a K-means run. */
struct KMeansResult
{
    /** k x d centroid matrix. */
    vecstore::Matrix centroids;

    /** Assignment of each *training* point to its centroid. */
    std::vector<std::uint32_t> assignments;

    /** Points per centroid (over the training set). */
    std::vector<std::size_t> sizes;

    /** Final mean squared distance to assigned centroid. */
    double objective = 0.0;

    /** Lloyd iterations actually executed. */
    std::size_t iterations = 0;
};

/**
 * Run Lloyd's algorithm on row-major data.
 *
 * Empty clusters are repaired by splitting the largest cluster, matching
 * standard FAISS behaviour, so the result always has k non-degenerate
 * centroids when the input has >= k distinct points.
 */
KMeansResult kmeans(const vecstore::Matrix &data, const KMeansConfig &config);

/**
 * Assign each row of @p data to the nearest centroid (L2). When @p pool
 * is non-null the rows are fanned out over it (assignments are
 * independent, so the result is identical either way).
 */
std::vector<std::uint32_t> assignToCentroids(const vecstore::Matrix &data,
                                             const vecstore::Matrix &centroids,
                                             util::ThreadPool *pool = nullptr);

/** Nearest centroid of a single vector. */
std::uint32_t nearestCentroid(vecstore::VecView v,
                              const vecstore::Matrix &centroids);

/**
 * Nearest @p n centroids of a single vector, best first.
 */
std::vector<std::uint32_t> nearestCentroids(vecstore::VecView v,
                                            const vecstore::Matrix &centroids,
                                            std::size_t n);

} // namespace cluster
} // namespace hermes
