#include "cluster/partitioner.hpp"

#include "util/logging.hpp"

namespace hermes {
namespace cluster {

using vecstore::Matrix;

const char *
partitionSchemeName(PartitionScheme scheme)
{
    switch (scheme) {
      case PartitionScheme::Similarity: return "similarity";
      case PartitionScheme::RoundRobin: return "round-robin";
      case PartitionScheme::Contiguous: return "contiguous";
    }
    return "?";
}

std::vector<std::size_t>
Partitioning::sizes() const
{
    std::vector<std::size_t> out;
    out.reserve(members.size());
    for (const auto &m : members)
        out.push_back(m.size());
    return out;
}

namespace {

/** Mean of the rows assigned to each partition. */
Matrix
computeMeans(const Matrix &data,
             const std::vector<std::vector<std::size_t>> &members)
{
    const std::size_t d = data.dim();
    Matrix centroids(members.size(), d);
    for (std::size_t p = 0; p < members.size(); ++p) {
        if (members[p].empty())
            continue;
        auto row = centroids.row(p);
        for (std::size_t idx : members[p]) {
            auto src = data.row(idx);
            for (std::size_t j = 0; j < d; ++j)
                row[j] += src[j];
        }
        float inv = 1.f / static_cast<float>(members[p].size());
        for (std::size_t j = 0; j < d; ++j)
            row[j] *= inv;
    }
    return centroids;
}

Partitioning
partitionSimilarity(const Matrix &data, const PartitionConfig &config)
{
    Partitioning out;

    // Multi-seed imbalance search on a subsample (paper §4.1).
    auto seed_search = findBalancedSeed(data, config.num_partitions,
                                        config.seeds_to_try,
                                        config.base_seed,
                                        config.seed_sample_fraction);
    out.chosen_seed = seed_search.best_seed;

    KMeansConfig km;
    km.k = config.num_partitions;
    km.seed = seed_search.best_seed;
    km.max_iterations = config.max_iterations;
    auto run = kmeans(data, km);

    out.centroids = std::move(run.centroids);
    auto assignments = assignToCentroids(data, out.centroids);
    out.members.assign(config.num_partitions, {});
    for (std::size_t i = 0; i < assignments.size(); ++i)
        out.members[assignments[i]].push_back(i);
    out.imbalance = imbalance(out.sizes());
    return out;
}

Partitioning
partitionRoundRobin(const Matrix &data, const PartitionConfig &config)
{
    Partitioning out;
    out.members.assign(config.num_partitions, {});
    for (std::size_t i = 0; i < data.rows(); ++i)
        out.members[i % config.num_partitions].push_back(i);
    out.centroids = computeMeans(data, out.members);
    out.imbalance = imbalance(out.sizes());
    return out;
}

Partitioning
partitionContiguous(const Matrix &data, const PartitionConfig &config)
{
    Partitioning out;
    out.members.assign(config.num_partitions, {});
    const std::size_t n = data.rows();
    const std::size_t p = config.num_partitions;
    for (std::size_t part = 0; part < p; ++part) {
        std::size_t begin = part * n / p;
        std::size_t end = (part + 1) * n / p;
        for (std::size_t i = begin; i < end; ++i)
            out.members[part].push_back(i);
    }
    out.centroids = computeMeans(data, out.members);
    out.imbalance = imbalance(out.sizes());
    return out;
}

} // namespace

Partitioning
partition(const Matrix &data, const PartitionConfig &config)
{
    HERMES_ASSERT(config.num_partitions >= 1,
                  "need at least one partition");
    HERMES_ASSERT(data.rows() >= config.num_partitions,
                  "fewer rows (", data.rows(), ") than partitions (",
                  config.num_partitions, ")");

    switch (config.scheme) {
      case PartitionScheme::Similarity:
        return partitionSimilarity(data, config);
      case PartitionScheme::RoundRobin:
        return partitionRoundRobin(data, config);
      case PartitionScheme::Contiguous:
        return partitionContiguous(data, config);
    }
    HERMES_PANIC("unknown partition scheme");
}

} // namespace cluster
} // namespace hermes
