#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/topk.hpp"

namespace hermes {
namespace cluster {

using vecstore::Matrix;

namespace {

/** Rows scored per blocked-kernel call (bounds scratch memory). */
constexpr std::size_t kScanBlockRows = 4096;

/**
 * Index of the centroid nearest to @p x under L2, via the blocked kernel
 * into a thread-local scratch buffer. Ties keep the lowest index, like
 * the strict-less scalar loop this replaces.
 */
std::uint32_t
argminCentroid(const float *x, const Matrix &centroids)
{
    const std::size_t k = centroids.rows();
    const std::size_t d = centroids.dim();
    static thread_local std::vector<float> scores;
    if (scores.size() < std::min(k, kScanBlockRows))
        scores.resize(std::min(k, kScanBlockRows));
    float best = std::numeric_limits<float>::max();
    std::uint32_t best_c = 0;
    for (std::size_t base = 0; base < k; base += kScanBlockRows) {
        const std::size_t len = std::min(kScanBlockRows, k - base);
        vecstore::l2SqBatch(x, centroids.row(base).data(), len, d,
                            scores.data());
        for (std::size_t c = 0; c < len; ++c) {
            if (scores[c] < best) {
                best = scores[c];
                best_c = static_cast<std::uint32_t>(base + c);
            }
        }
    }
    return best_c;
}

/**
 * k-means++ seeding: pick centroids proportionally to squared distance from
 * the closest already-chosen centroid.
 */
Matrix
seedKMeansPp(const Matrix &data, std::size_t k, util::Rng &rng)
{
    const std::size_t n = data.rows();
    const std::size_t d = data.dim();
    Matrix centroids(d);
    centroids.reserveRows(k);

    std::size_t first = rng.uniformInt(n);
    centroids.append(data.row(first));

    std::vector<float> dist_sq(n, std::numeric_limits<float>::max());
    std::vector<float> block(std::min(n, kScanBlockRows));
    for (std::size_t c = 1; c < k; ++c) {
        const float *last = centroids.row(c - 1).data();
        double total = 0.0;
        for (std::size_t base = 0; base < n; base += kScanBlockRows) {
            const std::size_t len = std::min(kScanBlockRows, n - base);
            vecstore::l2SqBatch(last, data.row(base).data(), len, d,
                                block.data());
            for (std::size_t i = 0; i < len; ++i) {
                dist_sq[base + i] = std::min(dist_sq[base + i], block[i]);
                total += dist_sq[base + i];
            }
        }
        if (total <= 0.0) {
            // All remaining points coincide with chosen centroids; fall
            // back to a uniform pick.
            centroids.append(data.row(rng.uniformInt(n)));
            continue;
        }
        double target = rng.uniform() * total;
        double acc = 0.0;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            acc += dist_sq[i];
            if (acc >= target) {
                chosen = i;
                break;
            }
        }
        centroids.append(data.row(chosen));
    }
    return centroids;
}

Matrix
seedRandom(const Matrix &data, std::size_t k, util::Rng &rng)
{
    auto picks = rng.sampleWithoutReplacement(data.rows(), k);
    Matrix centroids(data.dim());
    centroids.reserveRows(k);
    for (std::size_t idx : picks)
        centroids.append(data.row(idx));
    return centroids;
}

} // namespace

KMeansResult
kmeans(const Matrix &data, const KMeansConfig &config)
{
    HERMES_ASSERT(config.k >= 1, "kmeans needs k >= 1");
    HERMES_ASSERT(data.rows() >= config.k, "kmeans: fewer points (",
                  data.rows(), ") than centroids (", config.k, ")");

    util::Rng rng(config.seed);

    // Optional training subsample (paper §4.1: 1-2% subsets track the full
    // clustering closely at a fraction of the cost).
    const Matrix *train = &data;
    Matrix subset(data.dim());
    if (config.max_training_points > 0 &&
        config.max_training_points < data.rows()) {
        std::size_t want = std::max(config.max_training_points, config.k);
        auto picks = rng.sampleWithoutReplacement(data.rows(), want);
        subset = data.gather(picks);
        train = &subset;
    }

    const std::size_t n = train->rows();
    const std::size_t d = train->dim();
    const std::size_t k = config.k;

    KMeansResult result;
    result.centroids = config.use_kmeanspp ? seedKMeansPp(*train, k, rng)
                                           : seedRandom(*train, k, rng);
    result.assignments.assign(n, 0);
    result.sizes.assign(k, 0);

    std::vector<double> sums(k * d, 0.0);
    double prev_objective = std::numeric_limits<double>::max();

    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
        result.iterations = iter + 1;

        // Assignment step: one blocked scan of the centroid matrix per
        // point instead of a per-centroid kernel call.
        double objective = 0.0;
        std::fill(result.sizes.begin(), result.sizes.end(), 0);
        std::fill(sums.begin(), sums.end(), 0.0);
        std::vector<float> cd(k);
        for (std::size_t i = 0; i < n; ++i) {
            const float *x = train->row(i).data();
            vecstore::l2SqBatch(x, result.centroids.data(), k, d, cd.data());
            float best = std::numeric_limits<float>::max();
            std::uint32_t best_c = 0;
            for (std::size_t c = 0; c < k; ++c) {
                if (cd[c] < best) {
                    best = cd[c];
                    best_c = static_cast<std::uint32_t>(c);
                }
            }
            result.assignments[i] = best_c;
            result.sizes[best_c]++;
            objective += best;
            double *sum = sums.data() + best_c * d;
            for (std::size_t j = 0; j < d; ++j)
                sum[j] += x[j];
        }
        objective /= static_cast<double>(n);
        result.objective = objective;

        // Update step.
        for (std::size_t c = 0; c < k; ++c) {
            if (result.sizes[c] == 0)
                continue;
            float *centroid = result.centroids.row(c).data();
            double inv = 1.0 / static_cast<double>(result.sizes[c]);
            const double *sum = sums.data() + c * d;
            for (std::size_t j = 0; j < d; ++j)
                centroid[j] = static_cast<float>(sum[j] * inv);
        }

        // Empty-cluster repair: steal a perturbed copy of the largest
        // cluster's centroid (FAISS-style split).
        for (std::size_t c = 0; c < k; ++c) {
            if (result.sizes[c] > 0)
                continue;
            std::size_t biggest =
                static_cast<std::size_t>(std::max_element(
                    result.sizes.begin(), result.sizes.end()) -
                    result.sizes.begin());
            const float *src = result.centroids.row(biggest).data();
            float *dst = result.centroids.row(c).data();
            for (std::size_t j = 0; j < d; ++j) {
                float eps = static_cast<float>(rng.gaussian(0.0, 1e-4));
                dst[j] = src[j] * (1.f + eps) + eps;
            }
            // Give the repaired cluster a nominal share so repeated repairs
            // do not pick the same donor forever.
            result.sizes[c] = result.sizes[biggest] / 2;
            result.sizes[biggest] -= result.sizes[c];
        }

        double improvement = (prev_objective - objective) /
                             std::max(prev_objective, 1e-30);
        if (iter > 0 && improvement >= 0.0 && improvement < config.tolerance)
            break;
        prev_objective = objective;
    }

    // Final consistent assignment over the training set.
    result.assignments = assignToCentroids(*train, result.centroids);
    std::fill(result.sizes.begin(), result.sizes.end(), 0);
    for (auto a : result.assignments)
        result.sizes[a]++;

    return result;
}

std::vector<std::uint32_t>
assignToCentroids(const Matrix &data, const Matrix &centroids,
                  util::ThreadPool *pool)
{
    HERMES_ASSERT(data.dim() == centroids.dim(),
                  "assign: dim mismatch ", data.dim(), " vs ",
                  centroids.dim());
    std::vector<std::uint32_t> out(data.rows());
    auto assignOne = [&](std::size_t i) {
        out[i] = argminCentroid(data.row(i).data(), centroids);
    };
    if (pool != nullptr) {
        pool->parallelFor(data.rows(), assignOne);
    } else {
        for (std::size_t i = 0; i < data.rows(); ++i)
            assignOne(i);
    }
    return out;
}

std::uint32_t
nearestCentroid(vecstore::VecView v, const Matrix &centroids)
{
    HERMES_ASSERT(centroids.rows() > 0,
                  "nearestCentroid: empty centroid set");
    return argminCentroid(v.data(), centroids);
}

std::vector<std::uint32_t>
nearestCentroids(vecstore::VecView v, const Matrix &centroids, std::size_t n)
{
    const std::size_t k = centroids.rows();
    const std::size_t d = centroids.dim();
    n = std::min(n, k);
    vecstore::TopK selector(n);
    static thread_local std::vector<float> scores;
    if (scores.size() < std::min(k, kScanBlockRows))
        scores.resize(std::min(k, kScanBlockRows));
    for (std::size_t base = 0; base < k; base += kScanBlockRows) {
        const std::size_t len = std::min(kScanBlockRows, k - base);
        vecstore::l2SqBatch(v.data(), centroids.row(base).data(), len, d,
                            scores.data());
        for (std::size_t c = 0; c < len; ++c) {
            selector.push(static_cast<vecstore::VecId>(base + c),
                          scores[c]);
        }
    }
    auto hits = selector.take();
    std::vector<std::uint32_t> out;
    out.reserve(hits.size());
    for (const auto &hit : hits)
        out.push_back(static_cast<std::uint32_t>(hit.id));
    return out;
}

} // namespace cluster
} // namespace hermes
