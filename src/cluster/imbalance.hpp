/**
 * @file
 * Cluster-size imbalance metrics and multi-seed minimization (paper §4.1).
 *
 * K-means with different random seeds yields different cluster-size
 * imbalances; Hermes runs K-means on a small subsample across many seeds
 * and keeps the seed with the lowest largest-to-smallest size ratio.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cluster/kmeans.hpp"

namespace hermes {
namespace cluster {

/** Imbalance statistics over a set of cluster sizes. */
struct ImbalanceStats
{
    /** Largest / smallest cluster size (the paper's chosen proxy). */
    double max_min_ratio = 1.0;

    /** Population variance of sizes. */
    double variance = 0.0;

    /** Shannon entropy of the size distribution, in bits. */
    double entropy_bits = 0.0;

    /** Entropy normalized by log2(k); 1.0 = perfectly balanced. */
    double normalized_entropy = 1.0;
};

/** Compute imbalance statistics from cluster sizes. */
ImbalanceStats imbalance(const std::vector<std::size_t> &sizes);

/** Outcome of a multi-seed imbalance search. */
struct SeedSearchResult
{
    /** Winning seed. */
    std::uint64_t best_seed = 0;

    /** Imbalance (max/min ratio) obtained by the winning seed. */
    double best_ratio = 0.0;

    /** Ratio achieved by every candidate seed, in trial order. */
    std::vector<double> all_ratios;
};

/**
 * Try @p num_seeds K-means seeds on a subsample of @p data and return the
 * seed minimizing the max/min cluster-size ratio.
 *
 * @param data       Full embedding matrix.
 * @param k          Number of clusters.
 * @param num_seeds  Seeds to evaluate (seed values are base_seed + i).
 * @param base_seed  First candidate seed.
 * @param sample_fraction Fraction of rows used per trial (paper: 1-2%).
 */
SeedSearchResult findBalancedSeed(const vecstore::Matrix &data,
                                  std::size_t k,
                                  std::size_t num_seeds,
                                  std::uint64_t base_seed,
                                  double sample_fraction);

} // namespace cluster
} // namespace hermes
