/**
 * @file
 * Datastore partitioning strategies (paper §4.1, Fig 10 step 1).
 *
 * Hermes splits the monolithic datastore into per-node partitions by
 * K-means similarity so that a query only needs to visit a few partitions.
 * The naive baseline shards round-robin, which spreads every topic across
 * every node and forces all nodes to be searched.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "cluster/imbalance.hpp"
#include "cluster/kmeans.hpp"
#include "vecstore/matrix.hpp"

namespace hermes {
namespace cluster {

/** How to split a datastore across nodes. */
enum class PartitionScheme {
    /** K-means on document embeddings (Hermes). */
    Similarity,
    /** Round-robin assignment (naive distributed baseline). */
    RoundRobin,
    /** Contiguous equal ranges (insertion-order sharding). */
    Contiguous,
};

/** Human-readable scheme name. */
const char *partitionSchemeName(PartitionScheme scheme);

/** Partitioner configuration. */
struct PartitionConfig
{
    /** Number of partitions (cluster indices / nodes). */
    std::size_t num_partitions = 10;

    /** Scheme to use. */
    PartitionScheme scheme = PartitionScheme::Similarity;

    /** Candidate seeds for the balanced-seed search (Similarity only). */
    std::size_t seeds_to_try = 8;

    /** First candidate seed. */
    std::uint64_t base_seed = 1;

    /** Subsample fraction for seed search (paper: 1-2%). */
    double seed_sample_fraction = 0.02;

    /** K-means iterations for the final full-data clustering. */
    std::size_t max_iterations = 20;
};

/** Result of partitioning a datastore. */
struct Partitioning
{
    /** Row indices of the original matrix per partition. */
    std::vector<std::vector<std::size_t>> members;

    /**
     * Partition centroids (k x d). For non-similarity schemes these are
     * the means of the assigned rows, so centroid routing stays defined.
     */
    vecstore::Matrix centroids;

    /** Seed selected by the balanced-seed search (Similarity only). */
    std::uint64_t chosen_seed = 0;

    /** Imbalance of the final partition sizes. */
    ImbalanceStats imbalance;

    /** Partition sizes. */
    std::vector<std::size_t> sizes() const;
};

/**
 * Partition @p data into num_partitions pieces per @p config.
 */
Partitioning partition(const vecstore::Matrix &data,
                       const PartitionConfig &config);

} // namespace cluster
} // namespace hermes
