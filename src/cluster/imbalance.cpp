#include "cluster/imbalance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace hermes {
namespace cluster {

ImbalanceStats
imbalance(const std::vector<std::size_t> &sizes)
{
    HERMES_ASSERT(!sizes.empty(), "imbalance of empty size vector");

    ImbalanceStats stats;
    std::size_t smallest = *std::min_element(sizes.begin(), sizes.end());
    std::size_t largest = *std::max_element(sizes.begin(), sizes.end());
    stats.max_min_ratio = smallest == 0
        ? std::numeric_limits<double>::infinity()
        : static_cast<double>(largest) / static_cast<double>(smallest);

    double total = 0.0;
    for (auto s : sizes)
        total += static_cast<double>(s);
    double mean = total / static_cast<double>(sizes.size());

    double var = 0.0;
    double entropy = 0.0;
    for (auto s : sizes) {
        double x = static_cast<double>(s);
        var += (x - mean) * (x - mean);
        if (total > 0.0 && x > 0.0) {
            double p = x / total;
            entropy -= p * std::log2(p);
        }
    }
    stats.variance = var / static_cast<double>(sizes.size());
    stats.entropy_bits = entropy;
    double max_entropy = std::log2(static_cast<double>(sizes.size()));
    stats.normalized_entropy =
        max_entropy > 0.0 ? entropy / max_entropy : 1.0;
    return stats;
}

SeedSearchResult
findBalancedSeed(const vecstore::Matrix &data, std::size_t k,
                 std::size_t num_seeds, std::uint64_t base_seed,
                 double sample_fraction)
{
    HERMES_ASSERT(num_seeds >= 1, "need at least one candidate seed");
    HERMES_ASSERT(sample_fraction > 0.0 && sample_fraction <= 1.0,
                  "sample_fraction must be in (0, 1]: ", sample_fraction);

    std::size_t sample_points = static_cast<std::size_t>(
        sample_fraction * static_cast<double>(data.rows()));
    sample_points = std::max(sample_points, k * 8);
    sample_points = std::min(sample_points, data.rows());

    SeedSearchResult result;
    result.best_ratio = std::numeric_limits<double>::infinity();
    result.all_ratios.reserve(num_seeds);

    for (std::size_t i = 0; i < num_seeds; ++i) {
        KMeansConfig config;
        config.k = k;
        config.seed = base_seed + i;
        config.max_training_points = sample_points;
        // Short runs suffice: we only need the *relative* imbalance of the
        // converged basin each seed falls into.
        config.max_iterations = 10;
        auto run = kmeans(data, config);
        double ratio = imbalance(run.sizes).max_min_ratio;
        result.all_ratios.push_back(ratio);
        if (ratio < result.best_ratio) {
            result.best_ratio = ratio;
            result.best_seed = config.seed;
        }
    }
    return result;
}

} // namespace cluster
} // namespace hermes
