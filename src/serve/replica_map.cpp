#include "serve/replica_map.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "serve/load_report.hpp"

namespace hermes {
namespace serve {

ReplicaMap
ReplicaMap::identity(std::size_t num_clusters)
{
    ReplicaMap map;
    map.replicas_.resize(num_clusters);
    for (std::size_t c = 0; c < num_clusters; ++c)
        map.replicas_[c].push_back(static_cast<std::uint32_t>(c));
    map.num_nodes_ = num_clusters;
    return map;
}

const std::vector<std::uint32_t> &
ReplicaMap::replicas(std::size_t cluster) const
{
    if (cluster >= replicas_.size())
        throw std::out_of_range("ReplicaMap: cluster out of range");
    return replicas_[cluster];
}

void
ReplicaMap::assign(std::size_t cluster, std::uint32_t node)
{
    if (cluster >= replicas_.size())
        replicas_.resize(cluster + 1);
    std::vector<std::uint32_t> &slots = replicas_[cluster];
    if (std::find(slots.begin(), slots.end(), node) != slots.end())
        throw std::invalid_argument(
            "ReplicaMap: node assigned twice to one cluster");
    slots.push_back(node);
    num_nodes_ = std::max<std::size_t>(num_nodes_, node + 1);
}

bool
ReplicaMap::complete() const
{
    if (replicas_.empty())
        return false;
    std::vector<bool> seen(num_nodes_, false);
    for (const std::vector<std::uint32_t> &slots : replicas_) {
        if (slots.empty())
            return false;
        for (std::uint32_t node : slots) {
            if (node >= num_nodes_ || seen[node])
                return false;
            seen[node] = true;
        }
    }
    for (bool used : seen)
        if (!used)
            return false;
    return true;
}

bool
ReplicaMap::parseSpec(
    const std::string &spec,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> &out)
{
    out.clear();
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::size_t end = comma == std::string::npos ? spec.size() : comma;
        std::size_t colon = spec.find(':', pos);
        if (colon == std::string::npos || colon >= end || colon == pos ||
            colon + 1 >= end)
            return false;
        char *stop = nullptr;
        const std::string cluster_str = spec.substr(pos, colon - pos);
        const std::string count_str =
            spec.substr(colon + 1, end - colon - 1);
        long cluster = std::strtol(cluster_str.c_str(), &stop, 10);
        if (stop == nullptr || *stop != '\0' || cluster < 0)
            return false;
        long count = std::strtol(count_str.c_str(), &stop, 10);
        if (stop == nullptr || *stop != '\0' || count < 0)
            return false;
        out.emplace_back(static_cast<std::uint32_t>(cluster),
                         static_cast<std::uint32_t>(count));
        pos = end + (comma == std::string::npos ? 0 : 1);
        if (comma != std::string::npos && pos == spec.size())
            return false; // trailing comma
    }
    return !out.empty();
}

std::vector<ReplicaPlanEntry>
ReplicaMap::planFromLoad(const LoadReport &report,
                         const ReplicationPolicy &policy)
{
    std::vector<ReplicaPlanEntry> plan;
    if (report.clusters.empty() ||
        report.zipf_exponent < policy.min_zipf_exponent)
        return plan;

    std::uint64_t total_deep = 0;
    for (const ClusterLoad &c : report.clusters)
        total_deep += c.deep_requests;
    if (total_deep < policy.min_deep_requests)
        return plan;

    const double mean =
        static_cast<double>(total_deep) /
        static_cast<double>(report.clusters.size());

    // Hot clusters, hottest first: deep share above ratio x mean.
    std::vector<const ClusterLoad *> hot;
    for (const ClusterLoad &c : report.clusters)
        if (static_cast<double>(c.deep_requests) >
            policy.hot_share_ratio * mean)
            hot.push_back(&c);
    std::sort(hot.begin(), hot.end(),
              [](const ClusterLoad *a, const ClusterLoad *b) {
                  if (a->deep_requests != b->deep_requests)
                      return a->deep_requests > b->deep_requests;
                  return a->cluster < b->cluster;
              });

    std::size_t budget = policy.max_total_extras;
    for (const ClusterLoad *c : hot) {
        if (budget == 0)
            break;
        const std::size_t have = c->replicas > 0 ? c->replicas : 1;
        if (have >= policy.max_replicas_per_cluster)
            continue;
        const std::size_t want = std::min(
            policy.max_replicas_per_cluster - have, budget);
        plan.push_back({c->cluster, static_cast<std::uint32_t>(want)});
        budget -= want;
    }
    return plan;
}

} // namespace serve
} // namespace hermes
