#include "serve/load_report.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace hermes {
namespace serve {

double
fitZipfExponent(std::vector<double> counts)
{
    std::sort(counts.begin(), counts.end(), std::greater<double>());
    while (!counts.empty() && counts.back() <= 0.0)
        counts.pop_back();
    if (counts.size() < 2)
        return 0.0;

    // Linear regression of ln(count) on ln(rank): slope = -s.
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    const double n = static_cast<double>(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        double x = std::log(static_cast<double>(i + 1));
        double y = std::log(counts[i]);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    double denom = n * sxx - sx * sx;
    if (denom <= 0.0)
        return 0.0;
    double slope = (n * sxy - sx * sy) / denom;
    return -slope;
}

std::string
LoadReport::toJson() const
{
    using obs::detail::jsonNumber;
    std::string out = "{\n";
    out += "  \"uptime_seconds\": " + jsonNumber(uptime_seconds) + ",\n";
    out += "  \"queries\": " + std::to_string(queries) + ",\n";
    out += "  \"timeouts\": " + std::to_string(timeouts) + ",\n";
    out += "  \"failures\": " + std::to_string(failures) + ",\n";
    out += "  \"degraded_queries\": " + std::to_string(degraded_queries) +
        ",\n";
    out += "  \"hedges_issued\": " + std::to_string(hedges_issued) + ",\n";
    out += "  \"hedges_won\": " + std::to_string(hedges_won) + ",\n";
    out += "  \"hedges_wasted\": " + std::to_string(hedges_wasted) + ",\n";
    out += "  \"window_seconds\": " + jsonNumber(window_seconds) + ",\n";
    out += "  \"window_qps\": " + jsonNumber(window_qps) + ",\n";
    out += "  \"window_p50_us\": " + jsonNumber(window_p50_us) + ",\n";
    out += "  \"window_p99_us\": " + jsonNumber(window_p99_us) + ",\n";
    out += "  \"cumulative_p50_us\": " + jsonNumber(cumulative_p50_us) +
        ",\n";
    out += "  \"cumulative_p99_us\": " + jsonNumber(cumulative_p99_us) +
        ",\n";
    out += "  \"max_mean_ratio\": " + jsonNumber(max_mean_ratio) + ",\n";
    out += "  \"zipf_exponent\": " + jsonNumber(zipf_exponent) + ",\n";
    out += "  \"deep_imbalance\": {";
    out += "\"max_min_ratio\": " + jsonNumber(deep_imbalance.max_min_ratio);
    out += ", \"variance\": " + jsonNumber(deep_imbalance.variance);
    out += ", \"entropy_bits\": " + jsonNumber(deep_imbalance.entropy_bits);
    out += ", \"normalized_entropy\": " +
        jsonNumber(deep_imbalance.normalized_entropy);
    out += "},\n";
    out += "  \"total_energy_joules\": " +
        jsonNumber(total_energy_joules) + ",\n";
    out += "  \"measured_energy_valid\": ";
    out += measured_energy_valid ? "true" : "false";
    out += ",\n";
    out += "  \"measured_package_joules\": " +
        jsonNumber(measured_package_joules) + ",\n";
    out += "  \"measured_dram_joules\": " +
        jsonNumber(measured_dram_joules) + ",\n";
    out += "  \"energy_model_error_ratio\": " +
        jsonNumber(energy_model_error_ratio) + ",\n";
    out += "  \"clusters\": [";
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        const ClusterLoad &c = clusters[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"cluster\": " + std::to_string(c.cluster);
        out += ", \"shard_vectors\": " + std::to_string(c.shard_vectors);
        out += ", \"sample_requests\": " +
            std::to_string(c.sample_requests);
        out += ", \"deep_requests\": " + std::to_string(c.deep_requests);
        out += ", \"hits_returned\": " + std::to_string(c.hits_returned);
        out += ", \"requests\": " + std::to_string(c.requests);
        out += ", \"batches\": " + std::to_string(c.batches);
        out += ", \"batch_occupancy\": " + jsonNumber(c.batch_occupancy);
        out += ", \"queue_depth\": " + std::to_string(c.queue_depth);
        out += ", \"busy_seconds\": " + jsonNumber(c.busy_seconds);
        out += ", \"utilization\": " + jsonNumber(c.utilization);
        out += ", \"energy_joules\": " + jsonNumber(c.energy_joules);
        out += ", \"replicas\": " + std::to_string(c.replicas);
        out += ", \"replica_routes\": [";
        for (std::size_t r = 0; r < c.replica_routes.size(); ++r) {
            if (r != 0)
                out += ", ";
            out += std::to_string(c.replica_routes[r]);
        }
        out += "]}";
    }
    out += clusters.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace serve
} // namespace hermes
