#include "serve/broker.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <optional>
#include <thread>

#include "cluster/imbalance.hpp"
#include "core/search_strategy.hpp"
#include "obs/perf.hpp"
#include "sim/hardware.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "vecstore/topk.hpp"

namespace hermes {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::microseconds
microsFromDouble(double us)
{
    return std::chrono::microseconds(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(us)));
}

} // namespace

HermesBroker::HermesBroker(const core::DistributedStore &store,
                           const BrokerConfig &config)
    : hermes_config_(store.config()), config_(config), store_(&store),
      h_query_latency_(obs::Registry::instance().windowedHistogram(
          obs::names::kBrokerQueryLatencyUs)),
      h_sample_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerSamplePhaseUs)),
      h_deep_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerDeepPhaseUs)),
      h_merge_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerMergePhaseUs)),
      c_queries_(obs::Registry::instance().windowedCounter(
          obs::names::kBrokerQueries)),
      h_sample_probe_us_(obs::Registry::instance().windowedHistogram(
          obs::names::kBrokerSampleProbeUs)),
      start_time_(Clock::now())
{
    nodes_.reserve(store.numClusters());
    for (std::size_t c = 0; c < store.numClusters(); ++c) {
        NodeConfig node_config = config_.node;
        if (c < config_.node_faults.size())
            node_config.faults = config_.node_faults[c];
        node_config.node_id = c;
        nodes_.push_back(std::make_unique<LocalNodeClient>(
            store.clusterIndex(c), node_config));
    }
    initTopology(ReplicaMap::identity(nodes_.size()));
    initCounters();

    // Static replication: extra LocalNodeClients over the same immutable
    // shard indices — bit-identical replicas by construction.
    for (const auto &[cluster, total] : config_.replicate) {
        HERMES_ASSERT(cluster < store.numClusters(),
                      "replicate spec names a cluster the store lacks");
        for (std::uint32_t r = 1; r < total; ++r) {
            NodeConfig node_config = config_.node;
            if (cluster < config_.node_faults.size())
                node_config.faults = config_.node_faults[cluster];
            node_config.node_id = nodes_.size();
            addReplica(cluster, std::make_unique<LocalNodeClient>(
                                    store.clusterIndex(cluster),
                                    node_config));
        }
    }
}

HermesBroker::HermesBroker(const core::HermesConfig &hermes_config,
                           std::vector<std::unique_ptr<NodeClient>> nodes,
                           const BrokerConfig &config)
    : hermes_config_(hermes_config), config_(config),
      nodes_(std::move(nodes)),
      h_query_latency_(obs::Registry::instance().windowedHistogram(
          obs::names::kBrokerQueryLatencyUs)),
      h_sample_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerSamplePhaseUs)),
      h_deep_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerDeepPhaseUs)),
      h_merge_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerMergePhaseUs)),
      c_queries_(obs::Registry::instance().windowedCounter(
          obs::names::kBrokerQueries)),
      h_sample_probe_us_(obs::Registry::instance().windowedHistogram(
          obs::names::kBrokerSampleProbeUs)),
      start_time_(Clock::now())
{
    HERMES_ASSERT(!nodes_.empty(), "broker needs at least one node");
    if (config_.replica_map.empty()) {
        initTopology(ReplicaMap::identity(nodes_.size()));
    } else {
        HERMES_ASSERT(config_.replica_map.complete(),
                      "replica map must cover every cluster with "
                      "disjoint nodes");
        HERMES_ASSERT(config_.replica_map.numNodes() == nodes_.size(),
                      "replica map references a different node count "
                      "than was passed in");
        initTopology(config_.replica_map);
    }
    initCounters();
}

void
HermesBroker::initTopology(const ReplicaMap &map)
{
    auto &registry = obs::Registry::instance();
    topology_.resize(map.numClusters());
    node_clusters_.assign(nodes_.size(), 0);
    for (std::size_t c = 0; c < map.numClusters(); ++c) {
        const std::vector<std::uint32_t> &nodes = map.replicas(c);
        topology_[c].reserve(nodes.size());
        for (std::size_t slot = 0; slot < nodes.size(); ++slot) {
            std::uint32_t node = nodes[slot];
            topology_[c].push_back(ReplicaSlot{
                nodes_[node].get(), node,
                &registry.counter(obs::names::routeMetric(c, slot))});
            node_clusters_[node] = static_cast<std::uint32_t>(c);
        }
    }
}

void
HermesBroker::initCounters()
{
    auto &registry = obs::Registry::instance();
    cluster_counters_.reserve(topology_.size());
    for (std::size_t c = 0; c < topology_.size(); ++c) {
        cluster_counters_.push_back(ClusterCounters{
            registry.counter(obs::names::nodeMetric(
                c, obs::names::kNodeSampleRequests)),
            registry.counter(obs::names::nodeMetric(
                c, obs::names::kNodeDeepRequests)),
            registry.counter(obs::names::nodeMetric(
                c, obs::names::kNodeHitsReturned)),
        });
    }
}

HermesBroker::~HermesBroker() = default;

void
HermesBroker::addReplica(std::uint32_t cluster,
                         std::unique_ptr<NodeClient> node)
{
    auto &registry = obs::Registry::instance();
    std::unique_lock<std::shared_mutex> lock(topology_mutex_);
    HERMES_ASSERT(cluster < topology_.size(),
                  "addReplica: cluster out of range");
    const std::uint32_t node_index =
        static_cast<std::uint32_t>(nodes_.size());
    const std::size_t slot = topology_[cluster].size();
    nodes_.push_back(std::move(node));
    node_clusters_.push_back(cluster);
    topology_[cluster].push_back(ReplicaSlot{
        nodes_.back().get(), node_index,
        &registry.counter(obs::names::routeMetric(cluster, slot))});
    HERMES_INFORM("cluster ", cluster, " now served by ",
                topology_[cluster].size(), " replicas (node ", node_index,
                " attached)");
}

std::size_t
HermesBroker::autoReplicate(const ReplicationPolicy &policy)
{
    if (store_ == nullptr) {
        HERMES_WARN("autoReplicate: no store to clone shards from "
                    "(node-list broker); ignoring");
        return 0;
    }
    const std::vector<ReplicaPlanEntry> plan =
        ReplicaMap::planFromLoad(loadReport(), policy);
    std::size_t added = 0;
    for (const ReplicaPlanEntry &entry : plan) {
        for (std::uint32_t r = 0; r < entry.extras; ++r) {
            NodeConfig node_config = config_.node;
            if (entry.cluster < config_.node_faults.size())
                node_config.faults = config_.node_faults[entry.cluster];
            node_config.node_id = numNodes();
            addReplica(entry.cluster,
                       std::make_unique<LocalNodeClient>(
                           store_->clusterIndex(entry.cluster),
                           node_config));
            ++added;
        }
    }
    return added;
}

std::size_t
HermesBroker::replicaCount(std::uint32_t cluster) const
{
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    return cluster < topology_.size() ? topology_[cluster].size() : 0;
}

std::size_t
HermesBroker::numNodes() const
{
    std::shared_lock<std::shared_mutex> lock(topology_mutex_);
    return nodes_.size();
}

vecstore::HitList
HermesBroker::search(vecstore::VecView query, std::size_t k) const
{
    std::vector<std::uint32_t> unused;
    return search(query, k, unused);
}

std::size_t
HermesBroker::pickSlot(const std::vector<ReplicaSlot> &slots) const
{
    const std::size_t n = slots.size();
    if (n == 1)
        return 0;
    // Seeded per thread: routing never affects results (replicas are
    // bit-identical), so cross-run determinism is not required here.
    thread_local util::Rng rng(
        0x0b5e55ed5eedULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    std::size_t i = static_cast<std::size_t>(rng.uniformInt(n));
    std::size_t j = static_cast<std::size_t>(rng.uniformInt(n - 1));
    if (j >= i)
        ++j;
    const std::size_t qi = slots[i].node->queueDepth();
    const std::size_t qj = slots[j].node->queueDepth();
    // Ties go to i: i is uniformly random, so an idle fleet spreads
    // uniformly instead of pinning the lower-indexed replica.
    return qj < qi ? j : i;
}

HermesBroker::NodeOutcome
HermesBroker::collect(std::future<NodeResponse> future,
                      const std::vector<ReplicaSlot> &slots,
                      std::size_t primary_slot, vecstore::VecView query,
                      std::size_t k, const index::SearchParams &params,
                      std::uint64_t &timeouts,
                      std::uint64_t &failures) const
{
    NodeOutcome out;
    for (std::size_t attempt = 0;; ++attempt) {
        if (config_.node_deadline_ms > 0.0) {
            auto status = future.wait_for(
                std::chrono::duration<double, std::milli>(
                    config_.node_deadline_ms));
            if (status != std::future_status::ready) {
                ++timeouts;
                obs::instantEvent(
                    "broker.timeout",
                    {{"attempt", std::to_string(attempt + 1), true}});
                HERMES_WARN("node request missed its ",
                            config_.node_deadline_ms, " ms deadline "
                            "(attempt ", attempt + 1, ")");
                if (attempt < config_.max_retries) {
                    obs::instantEvent("broker.retry");
                    const std::size_t next =
                        (primary_slot + attempt + 1) % slots.size();
                    if (next != primary_slot)
                        slots[next].routed->add(1);
                    future = slots[next].node->submit(query, k, params);
                    continue;
                }
                return out;
            }
        }
        try {
            out.response = future.get();
            out.ok = true;
            return out;
        } catch (const std::exception &e) {
            ++failures;
            obs::instantEvent(
                "broker.failure",
                {{"attempt", std::to_string(attempt + 1), true}});
            HERMES_WARN("node request failed: ", e.what(), " (attempt ",
                        attempt + 1, ")");
        } catch (...) {
            ++failures;
            obs::instantEvent(
                "broker.failure",
                {{"attempt", std::to_string(attempt + 1), true}});
            HERMES_WARN("node request failed with a non-standard "
                        "exception (attempt ", attempt + 1, ")");
        }
        if (attempt >= config_.max_retries)
            return out;
        obs::instantEvent("broker.retry");
        // Retry on the next replica: with R = 1 this is the same node
        // (the pre-replication behaviour); with R > 1 a dead replica's
        // retries drain to its peers.
        const std::size_t next =
            (primary_slot + attempt + 1) % slots.size();
        if (next != primary_slot)
            slots[next].routed->add(1);
        future = slots[next].node->submit(query, k, params);
    }
}

HermesBroker::NodeOutcome
HermesBroker::collectHedged(std::future<NodeResponse> future,
                            const std::vector<ReplicaSlot> &slots,
                            std::size_t primary_slot,
                            Clock::time_point submitted, double trigger_us,
                            vecstore::VecView query, std::size_t k,
                            const index::SearchParams &params,
                            std::uint64_t &timeouts,
                            std::uint64_t &failures,
                            std::uint64_t &hedges_issued,
                            std::uint64_t &hedges_won,
                            std::uint64_t &hedges_wasted) const
{
    struct Lane
    {
        std::future<NodeResponse> future;
        std::size_t slot = 0;
        bool hedge = false;
        bool dead = false;
    };

    NodeOutcome out;
    // Both the deadline and the hedge trigger are anchored at SUBMIT
    // time, not collection time: probes are collected in cluster order,
    // so by the time a later cluster is collected its probe has already
    // aged — a trigger measured from now would systematically under-arm.
    const auto deadline_tp =
        submitted + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            config_.node_deadline_ms));
    const auto hedge_at = submitted + microsFromDouble(trigger_us);
    const auto poll = microsFromDouble(config_.hedge.poll_us);

    std::vector<Lane> lanes;
    lanes.reserve(2);
    lanes.push_back(Lane{std::move(future), primary_slot, false, false});
    std::vector<bool> used(slots.size(), false);
    used[primary_slot] = true;

    // Total submit budget: the primary, the hedge, and the same retry
    // allowance the unhedged path gets.
    std::size_t submits = 1;
    const std::size_t max_submits = 2 + config_.max_retries;
    bool hedge_armed = false;

    for (;;) {
        const auto now = Clock::now();

        // Arm the hedge once the primary outlives the trigger: duplicate
        // to the least-loaded unused replica and race the lanes.
        if (!hedge_armed && now >= hedge_at) {
            hedge_armed = true;
            if (submits < max_submits) {
                std::size_t best = slots.size();
                for (std::size_t s = 0; s < slots.size(); ++s) {
                    if (used[s])
                        continue;
                    if (best == slots.size() ||
                        slots[s].node->queueDepth() <
                            slots[best].node->queueDepth())
                        best = s;
                }
                if (best != slots.size()) {
                    slots[best].routed->add(1);
                    lanes.push_back(Lane{
                        slots[best].node->submit(query, k, params), best,
                        true, false});
                    used[best] = true;
                    ++submits;
                    ++hedges_issued;
                    obs::instantEvent(
                        "broker.hedge",
                        {{"node",
                          std::to_string(slots[best].node_index), true}});
                }
            }
        }

        bool any_live = false;
        bool hedge_pending = std::any_of(
            lanes.begin(), lanes.end(),
            [](const Lane &l) { return l.hedge; });
        for (Lane &lane : lanes) {
            if (lane.dead)
                continue;
            any_live = true;
            auto status = lane.future.wait_for(poll);
            if (status != std::future_status::ready)
                continue;
            try {
                out.response = lane.future.get();
                out.ok = true;
                if (lane.hedge)
                    ++hedges_won;
                else if (hedge_pending)
                    ++hedges_wasted;
                // The losing lane's future is abandoned here: both node
                // client kinds back it with a std::promise, so the late
                // response is dropped on the floor without blocking and
                // any pooled connection it rode stays healthy.
                return out;
            } catch (const std::exception &e) {
                ++failures;
                lane.dead = true;
                obs::instantEvent("broker.failure",
                                  {{"hedged", "1", true}});
                HERMES_WARN("probe lane failed: ", e.what());
            } catch (...) {
                ++failures;
                lane.dead = true;
                obs::instantEvent("broker.failure",
                                  {{"hedged", "1", true}});
                HERMES_WARN("probe lane failed with a non-standard "
                            "exception");
            }
        }

        // Every lane died (exceptions, not stragglers): open a fresh
        // lane on the next replica while the budget lasts. This is
        // failover, not a hedge — there is no race to win.
        if (!any_live) {
            if (submits >= max_submits)
                return out;
            const std::size_t next =
                (primary_slot + submits) % slots.size();
            obs::instantEvent("broker.retry");
            if (next != primary_slot)
                slots[next].routed->add(1);
            lanes.push_back(Lane{slots[next].node->submit(query, k, params),
                                 next, false, false});
            used[next] = true;
            ++submits;
        }

        // Deadline check LAST: a probe that completed before we got to
        // collect it (the deadline is anchored at submit, and earlier
        // clusters' collection may have consumed the budget) must still
        // be returned, never discarded as a timeout.
        if (Clock::now() >= deadline_tp) {
            ++timeouts;
            obs::instantEvent("broker.timeout",
                              {{"hedged", "1", true}});
            HERMES_WARN("hedged probe missed its ",
                        config_.node_deadline_ms, " ms deadline");
            return out;
        }
    }
}

vecstore::HitList
HermesBroker::search(vecstore::VecView query, std::size_t k,
                     std::vector<std::uint32_t> &deep_clusters) const
{
    const auto &config = hermes_config_;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;
    std::uint64_t hedges_issued = 0;
    std::uint64_t hedges_won = 0;
    std::uint64_t hedges_wasted = 0;

    // Routing works off a topology snapshot: addReplica() may grow the
    // fleet mid-query, but this query sticks to the replicas it started
    // with. Slots borrow NodeClient pointers that stay valid for the
    // broker's lifetime, so the lock is released before any waiting.
    Topology topology;
    {
        std::shared_lock<std::shared_mutex> lock(topology_mutex_);
        topology = topology_;
    }
    const std::size_t n = topology.size();

    // Hedge trigger for this query: the windowed p95 (configurable) of
    // recent sample-probe latencies, once enough samples exist. The
    // probe latency measured below includes the collect loop's queueing
    // behind earlier probes, so the trigger is biased upward — a hedge
    // fires only for genuine stragglers.
    double hedge_trigger_us = -1.0;
    if (config_.hedge.enabled && config_.node_deadline_ms > 0.0) {
        auto probes =
            h_sample_probe_us_.windowSnapshot(obs::kDefaultWindowSeconds);
        if (probes.count >= config_.hedge.min_samples) {
            hedge_trigger_us =
                std::max(probes.percentile(config_.hedge.quantile),
                         config_.hedge.min_trigger_us);
            if (hedge_trigger_us >= config_.node_deadline_ms * 1000.0)
                hedge_trigger_us = -1.0; // deadline fires first anyway
        }
    }

    // Per-query tracing: sample 1-in-N queries; the context marks this
    // thread (and, via the request's traced flag, the node workers) as
    // recording for the duration of this query.
    obs::TraceContext trace_context(
        obs::TraceRecorder::instance().sampleQuery());
    obs::ScopedSpan query_span("broker.query");
    query_span.arg("k", static_cast<std::uint64_t>(k));
    util::Timer query_timer;

    // Phase 1: broadcast the sampling request (paper §4.2 step 2), each
    // cluster's probe routed to one replica by power-of-two-choices.
    util::Timer phase_timer;
    std::optional<obs::ScopedSpan> sample_span;
    sample_span.emplace("broker.sample");
    // Hardware-counter attribution for the phase (no-op unless --perf).
    std::optional<obs::PerfScope> sample_perf;
    sample_perf.emplace(obs::PerfPhase::Sample);
    index::SearchParams sample_params;
    sample_params.nprobe = config.sample_nprobe;
    std::vector<std::future<NodeResponse>> sample_futures;
    std::vector<std::size_t> sample_slots(n, 0);
    std::vector<Clock::time_point> sample_submitted(n);
    sample_futures.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        const std::size_t slot = pickSlot(topology[c]);
        sample_slots[c] = slot;
        topology[c][slot].routed->add(1);
        cluster_counters_[c].sample_requests.add(1);
        sample_submitted[c] = Clock::now();
        sample_futures.push_back(topology[c][slot].node->submit(
            query, config.sample_k, sample_params));
    }

    // Rank clusters by best sampled document distance. A cluster whose
    // sampling request was lost (timeout/failure after retry) is simply
    // not a deep-search candidate this query.
    std::vector<std::pair<float, std::uint32_t>> ranked;
    std::vector<vecstore::HitList> sample_hits;
    ranked.reserve(n);
    sample_hits.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        const bool hedgeable =
            hedge_trigger_us > 0.0 && topology[c].size() > 1;
        auto outcome = hedgeable
            ? collectHedged(std::move(sample_futures[c]), topology[c],
                            sample_slots[c], sample_submitted[c],
                            hedge_trigger_us, query, config.sample_k,
                            sample_params, timeouts, failures,
                            hedges_issued, hedges_won, hedges_wasted)
            : collect(std::move(sample_futures[c]), topology[c],
                      sample_slots[c], query, config.sample_k,
                      sample_params, timeouts, failures);
        if (!outcome.ok)
            continue;
        h_sample_probe_us_.observe(
            std::chrono::duration<double, std::micro>(
                Clock::now() - sample_submitted[c]).count());
        cluster_counters_[c].hits_returned.add(
            outcome.response.hits.size());
        float best = outcome.response.hits.empty()
            ? std::numeric_limits<float>::max()
            : outcome.response.hits.front().score;
        ranked.emplace_back(best, static_cast<std::uint32_t>(c));
        sample_hits.push_back(std::move(outcome.response.hits));
    }
    std::sort(ranked.begin(), ranked.end());
    sample_span->arg("clusters_sampled",
                     static_cast<std::uint64_t>(ranked.size()));
    sample_perf.reset();
    sample_span.reset();
    h_sample_phase_.observe(phase_timer.elapsedMicros());

    if (ranked.empty()) {
        // Every node lost its sampling request. Best effort: deep-search
        // the configured number of clusters in id order anyway — some may
        // answer deep requests even after a lost sample.
        for (std::size_t c = 0;
             c < std::min(config.clusters_to_search, n); ++c) {
            ranked.emplace_back(std::numeric_limits<float>::max(),
                                static_cast<std::uint32_t>(c));
        }
    }

    // Phase 2: deep-search the top clusters (with optional adaptive
    // pruning, matching core::HermesSearch semantics).
    std::size_t deep = std::min(config.clusters_to_search, ranked.size());
    if (config.adaptive_epsilon > 0.0 && !ranked.empty()) {
        float bound = core::adaptivePruneBound(ranked.front().first,
                                               config.adaptive_epsilon);
        std::size_t keep = 0;
        while (keep < deep && ranked[keep].first <= bound)
            ++keep;
        deep = std::max<std::size_t>(keep, 1);
    }

    phase_timer.reset();
    std::optional<obs::ScopedSpan> deep_span;
    deep_span.emplace("broker.deep");
    std::optional<obs::PerfScope> deep_perf;
    deep_perf.emplace(obs::PerfPhase::Deep);
    deep_span->arg("clusters", static_cast<std::uint64_t>(deep));
    index::SearchParams deep_params;
    deep_params.nprobe = config.deep_nprobe;
    std::vector<std::future<NodeResponse>> deep_futures;
    std::vector<std::size_t> deep_slots;
    deep_clusters.clear();
    for (std::size_t i = 0; i < deep; ++i) {
        std::uint32_t c = ranked[i].second;
        deep_clusters.push_back(c);
        const std::size_t slot = pickSlot(topology[c]);
        deep_slots.push_back(slot);
        topology[c][slot].routed->add(1);
        cluster_counters_[c].deep_requests.add(1);
        deep_futures.push_back(
            topology[c][slot].node->submit(query, k, deep_params));
    }

    std::vector<vecstore::HitList> partials;
    partials.reserve(deep_futures.size());
    std::size_t deep_ok = 0;
    for (std::size_t i = 0; i < deep_futures.size(); ++i) {
        auto outcome =
            collect(std::move(deep_futures[i]),
                    topology[deep_clusters[i]], deep_slots[i], query, k,
                    deep_params, timeouts, failures);
        if (outcome.ok) {
            cluster_counters_[deep_clusters[i]].hits_returned.add(
                outcome.response.hits.size());
            partials.push_back(std::move(outcome.response.hits));
            ++deep_ok;
        }
    }
    deep_perf.reset();
    deep_span.reset();
    h_deep_phase_.observe(phase_timer.elapsedMicros());

    // Graceful degradation: when a deep node was lost, backfill with the
    // sampling hits already in hand so the merged answer keeps as many of
    // the top-k as possible. Fewer than k hits can only happen when every
    // deep node failed and sampling yielded too little. Fault-free
    // queries never take this path, preserving bit-parity with
    // core::HermesSearch.
    if (deep_ok < deep) {
        for (auto &hits : sample_hits)
            partials.push_back(std::move(hits));
    }
    bool degraded = timeouts > 0 || failures > 0;
    if (degraded) {
        HERMES_DEBUG("degraded query: ", timeouts, " timeouts, ",
                     failures, " failures across ", deep,
                     " deep clusters");
    }

    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++queries_;
        deep_requests_ += deep;
        timeouts_ += timeouts;
        failures_ += failures;
        if (degraded)
            ++degraded_queries_;
        hedges_issued_ += hedges_issued;
        hedges_won_ += hedges_won;
        hedges_wasted_ += hedges_wasted;
    }

    // Mirror the lifetime counters into the exportable registry. The
    // query counter is windowed so /load can report a rolling QPS.
    {
        static obs::Counter &c_deep = obs::Registry::instance().counter(
            obs::names::kBrokerDeepRequests);
        static obs::Counter &c_timeouts = obs::Registry::instance().counter(
            obs::names::kBrokerTimeouts);
        static obs::Counter &c_failures = obs::Registry::instance().counter(
            obs::names::kBrokerFailures);
        static obs::Counter &c_degraded = obs::Registry::instance().counter(
            obs::names::kBrokerDegradedQueries);
        static obs::Counter &c_hedges_issued =
            obs::Registry::instance().counter(
                obs::names::kBrokerHedgesIssued);
        static obs::Counter &c_hedges_won =
            obs::Registry::instance().counter(
                obs::names::kBrokerHedgesWon);
        static obs::Counter &c_hedges_wasted =
            obs::Registry::instance().counter(
                obs::names::kBrokerHedgesWasted);
        c_queries_.add(1);
        c_deep.add(deep);
        if (timeouts)
            c_timeouts.add(timeouts);
        if (failures)
            c_failures.add(failures);
        if (degraded)
            c_degraded.add(1);
        if (hedges_issued)
            c_hedges_issued.add(hedges_issued);
        if (hedges_won)
            c_hedges_won.add(hedges_won);
        if (hedges_wasted)
            c_hedges_wasted.add(hedges_wasted);
    }

    phase_timer.reset();
    vecstore::HitList merged;
    {
        obs::ScopedSpan merge_span("broker.merge");
        obs::PerfScope merge_perf(obs::PerfPhase::Merge);
        merge_span.arg("partials",
                       static_cast<std::uint64_t>(partials.size()));
        merged = vecstore::mergeHitLists(partials, k);
    }
    h_merge_phase_.observe(phase_timer.elapsedMicros());
    query_span.arg("deep_clusters",
                   static_cast<std::uint64_t>(deep_clusters.size()));
    query_span.arg("degraded", static_cast<std::uint64_t>(degraded));
    h_query_latency_.observe(query_timer.elapsedMicros());
    return merged;
}

BrokerStats
HermesBroker::stats() const
{
    BrokerStats stats;
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        stats.queries = queries_;
        stats.deep_requests = deep_requests_;
        stats.timeouts = timeouts_;
        stats.failures = failures_;
        stats.degraded_queries = degraded_queries_;
        stats.hedges_issued = hedges_issued_;
        stats.hedges_won = hedges_won_;
        stats.hedges_wasted = hedges_wasted_;
    }
    stats.query_latency =
        obs::LatencySummary::from(h_query_latency_.cumulative().snapshot());
    stats.sample_phase =
        obs::LatencySummary::from(h_sample_phase_.snapshot());
    stats.deep_phase =
        obs::LatencySummary::from(h_deep_phase_.snapshot());
    stats.merge_phase =
        obs::LatencySummary::from(h_merge_phase_.snapshot());
    {
        std::shared_lock<std::shared_mutex> lock(topology_mutex_);
        stats.nodes.reserve(nodes_.size());
        for (const auto &node : nodes_)
            stats.nodes.push_back(node->stats());
        stats.node_clusters = node_clusters_;
    }
    return stats;
}

LoadReport
HermesBroker::loadReport(std::size_t window_s) const
{
    LoadReport report;
    report.uptime_seconds = std::chrono::duration<double>(
        Clock::now() - start_time_).count();
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        report.queries = queries_;
        report.timeouts = timeouts_;
        report.failures = failures_;
        report.degraded_queries = degraded_queries_;
        report.hedges_issued = hedges_issued_;
        report.hedges_won = hedges_won_;
        report.hedges_wasted = hedges_wasted_;
    }

    report.window_seconds = static_cast<double>(window_s);
    report.window_qps = c_queries_.ratePerSecond(window_s);
    auto window = h_query_latency_.windowSnapshot(window_s);
    report.window_p50_us = window.percentile(50.0);
    report.window_p99_us = window.percentile(99.0);
    auto cumulative = h_query_latency_.cumulative().snapshot();
    report.cumulative_p50_us = cumulative.percentile(50.0);
    report.cumulative_p99_us = cumulative.percentile(99.0);

    // Idle power runs whether or not requests arrive; attribute each
    // node's static share here from wall time, on top of the dynamic
    // energy the worker accrued per busy interval (Fig 18 shape: joules
    // per query fall as load rises because the idle floor amortizes).
    // A replicated cluster pays the idle floor once per replica.
    const sim::CpuProfile &cpu = sim::cpuProfile(config_.node.cpu_model);
    const double idle_joules = config_.node.model_energy
        ? report.uptime_seconds * cpu.idle_watts /
            static_cast<double>(cpu.cores)
        : 0.0;

    Topology topology;
    {
        std::shared_lock<std::shared_mutex> lock(topology_mutex_);
        topology = topology_;
    }

    report.clusters.reserve(topology.size());
    std::vector<std::size_t> deep_counts;
    deep_counts.reserve(topology.size());
    for (std::size_t c = 0; c < topology.size(); ++c) {
        const std::vector<ReplicaSlot> &slots = topology[c];
        ClusterLoad load;
        load.cluster = static_cast<std::uint32_t>(c);
        load.shard_vectors = slots.front().node->shardSize();
        load.sample_requests = cluster_counters_[c].sample_requests.value();
        load.deep_requests = cluster_counters_[c].deep_requests.value();
        load.hits_returned = cluster_counters_[c].hits_returned.value();
        load.replicas = static_cast<std::uint32_t>(slots.size());
        load.replica_routes.reserve(slots.size());
        for (const ReplicaSlot &slot : slots) {
            NodeStats node_stats = slot.node->stats();
            load.requests += node_stats.requests;
            load.batches += node_stats.batches;
            load.queue_depth += slot.node->queueDepth();
            load.busy_seconds += node_stats.busy_seconds;
            load.energy_joules += node_stats.energy_joules + idle_joules;
            load.replica_routes.push_back(slot.routed->value());
        }
        load.batch_occupancy = load.batches > 0
            ? static_cast<double>(load.requests) /
                static_cast<double>(load.batches)
            : 0.0;
        // Utilization of the cluster's replica set: busy time over the
        // replicas' combined capacity, so 1.0 still means saturated.
        load.utilization = report.uptime_seconds > 0.0
            ? load.busy_seconds /
                (report.uptime_seconds * static_cast<double>(slots.size()))
            : 0.0;
        report.total_energy_joules += load.energy_joules;
        deep_counts.push_back(
            static_cast<std::size_t>(load.deep_requests));
        report.clusters.push_back(std::move(load));
    }

    if (!deep_counts.empty()) {
        report.deep_imbalance = cluster::imbalance(deep_counts);
        double sum = 0.0;
        std::size_t max_count = 0;
        for (std::size_t n : deep_counts) {
            sum += static_cast<double>(n);
            max_count = std::max(max_count, n);
        }
        double mean = sum / static_cast<double>(deep_counts.size());
        report.max_mean_ratio =
            mean > 0.0 ? static_cast<double>(max_count) / mean : 0.0;
        std::vector<double> as_double(deep_counts.begin(),
                                      deep_counts.end());
        report.zipf_exponent = fitZipfExponent(std::move(as_double));
    }

    // Measured energy beside the model: whole-package RAPL joules since
    // the sampler started (invalid — and every field zero — unless
    // --perf is on and powercap is readable). The ratio is the live
    // falsifiability check on the Fig 18 model; on shared hardware it
    // includes co-tenant work, so treat it as an upper bound.
    obs::RaplSample rapl = obs::raplSample();
    if (rapl.valid) {
        report.measured_energy_valid = true;
        report.measured_package_joules = rapl.package_joules;
        report.measured_dram_joules = rapl.dram_joules;
        if (report.total_energy_joules > 0.0 &&
            rapl.package_joules > 0.0) {
            report.energy_model_error_ratio =
                rapl.package_joules / report.total_energy_joules;
            obs::Registry::instance()
                .gauge(obs::names::kEnergyModelErrorRatio)
                .set(report.energy_model_error_ratio);
        }
    }
    return report;
}

} // namespace serve
} // namespace hermes
