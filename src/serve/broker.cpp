#include "serve/broker.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>

#include "cluster/imbalance.hpp"
#include "core/search_strategy.hpp"
#include "sim/hardware.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "vecstore/topk.hpp"

namespace hermes {
namespace serve {

HermesBroker::HermesBroker(const core::DistributedStore &store,
                           const BrokerConfig &config)
    : hermes_config_(store.config()), config_(config),
      h_query_latency_(obs::Registry::instance().windowedHistogram(
          obs::names::kBrokerQueryLatencyUs)),
      h_sample_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerSamplePhaseUs)),
      h_deep_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerDeepPhaseUs)),
      h_merge_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerMergePhaseUs)),
      c_queries_(obs::Registry::instance().windowedCounter(
          obs::names::kBrokerQueries)),
      start_time_(std::chrono::steady_clock::now())
{
    nodes_.reserve(store.numClusters());
    for (std::size_t c = 0; c < store.numClusters(); ++c) {
        NodeConfig node_config = config_.node;
        if (c < config_.node_faults.size())
            node_config.faults = config_.node_faults[c];
        node_config.node_id = c;
        nodes_.push_back(std::make_unique<LocalNodeClient>(
            store.clusterIndex(c), node_config));
    }
    initCounters();
}

HermesBroker::HermesBroker(const core::HermesConfig &hermes_config,
                           std::vector<std::unique_ptr<NodeClient>> nodes,
                           const BrokerConfig &config)
    : hermes_config_(hermes_config), config_(config),
      nodes_(std::move(nodes)),
      h_query_latency_(obs::Registry::instance().windowedHistogram(
          obs::names::kBrokerQueryLatencyUs)),
      h_sample_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerSamplePhaseUs)),
      h_deep_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerDeepPhaseUs)),
      h_merge_phase_(obs::Registry::instance().histogram(
          obs::names::kBrokerMergePhaseUs)),
      c_queries_(obs::Registry::instance().windowedCounter(
          obs::names::kBrokerQueries)),
      start_time_(std::chrono::steady_clock::now())
{
    HERMES_ASSERT(!nodes_.empty(), "broker needs at least one node");
    initCounters();
}

void
HermesBroker::initCounters()
{
    auto &registry = obs::Registry::instance();
    cluster_counters_.reserve(nodes_.size());
    for (std::size_t c = 0; c < nodes_.size(); ++c) {
        cluster_counters_.push_back(ClusterCounters{
            registry.counter(obs::names::nodeMetric(
                c, obs::names::kNodeSampleRequests)),
            registry.counter(obs::names::nodeMetric(
                c, obs::names::kNodeDeepRequests)),
            registry.counter(obs::names::nodeMetric(
                c, obs::names::kNodeHitsReturned)),
        });
    }
}

HermesBroker::~HermesBroker() = default;

vecstore::HitList
HermesBroker::search(vecstore::VecView query, std::size_t k) const
{
    std::vector<std::uint32_t> unused;
    return search(query, k, unused);
}

HermesBroker::NodeOutcome
HermesBroker::collect(std::future<NodeResponse> future, NodeClient &node,
                      vecstore::VecView query, std::size_t k,
                      const index::SearchParams &params,
                      std::uint64_t &timeouts,
                      std::uint64_t &failures) const
{
    NodeOutcome out;
    for (std::size_t attempt = 0;; ++attempt) {
        if (config_.node_deadline_ms > 0.0) {
            auto status = future.wait_for(
                std::chrono::duration<double, std::milli>(
                    config_.node_deadline_ms));
            if (status != std::future_status::ready) {
                ++timeouts;
                obs::instantEvent(
                    "broker.timeout",
                    {{"attempt", std::to_string(attempt + 1), true}});
                HERMES_WARN("node request missed its ",
                            config_.node_deadline_ms, " ms deadline "
                            "(attempt ", attempt + 1, ")");
                if (attempt < config_.max_retries) {
                    obs::instantEvent("broker.retry");
                    future = node.submit(query, k, params);
                    continue;
                }
                return out;
            }
        }
        try {
            out.response = future.get();
            out.ok = true;
            return out;
        } catch (const std::exception &e) {
            ++failures;
            obs::instantEvent(
                "broker.failure",
                {{"attempt", std::to_string(attempt + 1), true}});
            HERMES_WARN("node request failed: ", e.what(), " (attempt ",
                        attempt + 1, ")");
        } catch (...) {
            ++failures;
            obs::instantEvent(
                "broker.failure",
                {{"attempt", std::to_string(attempt + 1), true}});
            HERMES_WARN("node request failed with a non-standard "
                        "exception (attempt ", attempt + 1, ")");
        }
        if (attempt >= config_.max_retries)
            return out;
        obs::instantEvent("broker.retry");
        future = node.submit(query, k, params);
    }
}

vecstore::HitList
HermesBroker::search(vecstore::VecView query, std::size_t k,
                     std::vector<std::uint32_t> &deep_clusters) const
{
    const auto &config = hermes_config_;
    const std::size_t n = nodes_.size();
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;

    // Per-query tracing: sample 1-in-N queries; the context marks this
    // thread (and, via the request's traced flag, the node workers) as
    // recording for the duration of this query.
    obs::TraceContext trace_context(
        obs::TraceRecorder::instance().sampleQuery());
    obs::ScopedSpan query_span("broker.query");
    query_span.arg("k", static_cast<std::uint64_t>(k));
    util::Timer query_timer;

    // Phase 1: broadcast the sampling request (paper §4.2 step 2).
    util::Timer phase_timer;
    std::optional<obs::ScopedSpan> sample_span;
    sample_span.emplace("broker.sample");
    index::SearchParams sample_params;
    sample_params.nprobe = config.sample_nprobe;
    std::vector<std::future<NodeResponse>> sample_futures;
    sample_futures.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        cluster_counters_[c].sample_requests.add(1);
        sample_futures.push_back(
            nodes_[c]->submit(query, config.sample_k, sample_params));
    }

    // Rank clusters by best sampled document distance. A cluster whose
    // sampling request was lost (timeout/failure after retry) is simply
    // not a deep-search candidate this query.
    std::vector<std::pair<float, std::uint32_t>> ranked;
    std::vector<vecstore::HitList> sample_hits;
    ranked.reserve(n);
    sample_hits.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        auto outcome =
            collect(std::move(sample_futures[c]), *nodes_[c], query,
                    config.sample_k, sample_params, timeouts, failures);
        if (!outcome.ok)
            continue;
        cluster_counters_[c].hits_returned.add(
            outcome.response.hits.size());
        float best = outcome.response.hits.empty()
            ? std::numeric_limits<float>::max()
            : outcome.response.hits.front().score;
        ranked.emplace_back(best, static_cast<std::uint32_t>(c));
        sample_hits.push_back(std::move(outcome.response.hits));
    }
    std::sort(ranked.begin(), ranked.end());
    sample_span->arg("clusters_sampled",
                     static_cast<std::uint64_t>(ranked.size()));
    sample_span.reset();
    h_sample_phase_.observe(phase_timer.elapsedMicros());

    if (ranked.empty()) {
        // Every node lost its sampling request. Best effort: deep-search
        // the configured number of clusters in id order anyway — some may
        // answer deep requests even after a lost sample.
        for (std::size_t c = 0;
             c < std::min(config.clusters_to_search, n); ++c) {
            ranked.emplace_back(std::numeric_limits<float>::max(),
                                static_cast<std::uint32_t>(c));
        }
    }

    // Phase 2: deep-search the top clusters (with optional adaptive
    // pruning, matching core::HermesSearch semantics).
    std::size_t deep = std::min(config.clusters_to_search, ranked.size());
    if (config.adaptive_epsilon > 0.0 && !ranked.empty()) {
        float bound = core::adaptivePruneBound(ranked.front().first,
                                               config.adaptive_epsilon);
        std::size_t keep = 0;
        while (keep < deep && ranked[keep].first <= bound)
            ++keep;
        deep = std::max<std::size_t>(keep, 1);
    }

    phase_timer.reset();
    std::optional<obs::ScopedSpan> deep_span;
    deep_span.emplace("broker.deep");
    deep_span->arg("clusters", static_cast<std::uint64_t>(deep));
    index::SearchParams deep_params;
    deep_params.nprobe = config.deep_nprobe;
    std::vector<std::future<NodeResponse>> deep_futures;
    deep_clusters.clear();
    for (std::size_t i = 0; i < deep; ++i) {
        std::uint32_t c = ranked[i].second;
        deep_clusters.push_back(c);
        cluster_counters_[c].deep_requests.add(1);
        deep_futures.push_back(nodes_[c]->submit(query, k, deep_params));
    }

    std::vector<vecstore::HitList> partials;
    partials.reserve(deep_futures.size());
    std::size_t deep_ok = 0;
    for (std::size_t i = 0; i < deep_futures.size(); ++i) {
        auto outcome = collect(std::move(deep_futures[i]),
                               *nodes_[deep_clusters[i]], query, k,
                               deep_params, timeouts, failures);
        if (outcome.ok) {
            cluster_counters_[deep_clusters[i]].hits_returned.add(
                outcome.response.hits.size());
            partials.push_back(std::move(outcome.response.hits));
            ++deep_ok;
        }
    }
    deep_span.reset();
    h_deep_phase_.observe(phase_timer.elapsedMicros());

    // Graceful degradation: when a deep node was lost, backfill with the
    // sampling hits already in hand so the merged answer keeps as many of
    // the top-k as possible. Fewer than k hits can only happen when every
    // deep node failed and sampling yielded too little. Fault-free
    // queries never take this path, preserving bit-parity with
    // core::HermesSearch.
    if (deep_ok < deep) {
        for (auto &hits : sample_hits)
            partials.push_back(std::move(hits));
    }
    bool degraded = timeouts > 0 || failures > 0;
    if (degraded) {
        HERMES_DEBUG("degraded query: ", timeouts, " timeouts, ",
                     failures, " failures across ", deep,
                     " deep clusters");
    }

    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++queries_;
        deep_requests_ += deep;
        timeouts_ += timeouts;
        failures_ += failures;
        if (degraded)
            ++degraded_queries_;
    }

    // Mirror the lifetime counters into the exportable registry. The
    // query counter is windowed so /load can report a rolling QPS.
    {
        static obs::Counter &c_deep = obs::Registry::instance().counter(
            obs::names::kBrokerDeepRequests);
        static obs::Counter &c_timeouts = obs::Registry::instance().counter(
            obs::names::kBrokerTimeouts);
        static obs::Counter &c_failures = obs::Registry::instance().counter(
            obs::names::kBrokerFailures);
        static obs::Counter &c_degraded = obs::Registry::instance().counter(
            obs::names::kBrokerDegradedQueries);
        c_queries_.add(1);
        c_deep.add(deep);
        if (timeouts)
            c_timeouts.add(timeouts);
        if (failures)
            c_failures.add(failures);
        if (degraded)
            c_degraded.add(1);
    }

    phase_timer.reset();
    vecstore::HitList merged;
    {
        obs::ScopedSpan merge_span("broker.merge");
        merge_span.arg("partials",
                       static_cast<std::uint64_t>(partials.size()));
        merged = vecstore::mergeHitLists(partials, k);
    }
    h_merge_phase_.observe(phase_timer.elapsedMicros());
    query_span.arg("deep_clusters",
                   static_cast<std::uint64_t>(deep_clusters.size()));
    query_span.arg("degraded", static_cast<std::uint64_t>(degraded));
    h_query_latency_.observe(query_timer.elapsedMicros());
    return merged;
}

BrokerStats
HermesBroker::stats() const
{
    BrokerStats stats;
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        stats.queries = queries_;
        stats.deep_requests = deep_requests_;
        stats.timeouts = timeouts_;
        stats.failures = failures_;
        stats.degraded_queries = degraded_queries_;
    }
    stats.query_latency =
        obs::LatencySummary::from(h_query_latency_.cumulative().snapshot());
    stats.sample_phase =
        obs::LatencySummary::from(h_sample_phase_.snapshot());
    stats.deep_phase =
        obs::LatencySummary::from(h_deep_phase_.snapshot());
    stats.merge_phase =
        obs::LatencySummary::from(h_merge_phase_.snapshot());
    stats.nodes.reserve(nodes_.size());
    for (const auto &node : nodes_)
        stats.nodes.push_back(node->stats());
    return stats;
}

LoadReport
HermesBroker::loadReport(std::size_t window_s) const
{
    LoadReport report;
    report.uptime_seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_time_).count();
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        report.queries = queries_;
        report.timeouts = timeouts_;
        report.failures = failures_;
        report.degraded_queries = degraded_queries_;
    }

    report.window_seconds = static_cast<double>(window_s);
    report.window_qps = c_queries_.ratePerSecond(window_s);
    auto window = h_query_latency_.windowSnapshot(window_s);
    report.window_p50_us = window.percentile(50.0);
    report.window_p99_us = window.percentile(99.0);
    auto cumulative = h_query_latency_.cumulative().snapshot();
    report.cumulative_p50_us = cumulative.percentile(50.0);
    report.cumulative_p99_us = cumulative.percentile(99.0);

    // Idle power runs whether or not requests arrive; attribute each
    // node's static share here from wall time, on top of the dynamic
    // energy the worker accrued per busy interval (Fig 18 shape: joules
    // per query fall as load rises because the idle floor amortizes).
    const sim::CpuProfile &cpu = sim::cpuProfile(config_.node.cpu_model);
    const double idle_joules = config_.node.model_energy
        ? report.uptime_seconds * cpu.idle_watts /
            static_cast<double>(cpu.cores)
        : 0.0;

    report.clusters.reserve(nodes_.size());
    std::vector<std::size_t> deep_counts;
    deep_counts.reserve(nodes_.size());
    for (std::size_t c = 0; c < nodes_.size(); ++c) {
        ClusterLoad load;
        load.cluster = static_cast<std::uint32_t>(c);
        load.shard_vectors = nodes_[c]->shardSize();
        load.sample_requests = cluster_counters_[c].sample_requests.value();
        load.deep_requests = cluster_counters_[c].deep_requests.value();
        load.hits_returned = cluster_counters_[c].hits_returned.value();
        NodeStats node_stats = nodes_[c]->stats();
        load.requests = node_stats.requests;
        load.batches = node_stats.batches;
        load.batch_occupancy = node_stats.batches > 0
            ? static_cast<double>(node_stats.requests) /
                static_cast<double>(node_stats.batches)
            : 0.0;
        load.queue_depth = nodes_[c]->queueDepth();
        load.busy_seconds = node_stats.busy_seconds;
        load.utilization = report.uptime_seconds > 0.0
            ? node_stats.busy_seconds / report.uptime_seconds
            : 0.0;
        load.energy_joules = node_stats.energy_joules + idle_joules;
        report.total_energy_joules += load.energy_joules;
        deep_counts.push_back(
            static_cast<std::size_t>(load.deep_requests));
        report.clusters.push_back(load);
    }

    if (!deep_counts.empty()) {
        report.deep_imbalance = cluster::imbalance(deep_counts);
        double sum = 0.0;
        std::size_t max_count = 0;
        for (std::size_t n : deep_counts) {
            sum += static_cast<double>(n);
            max_count = std::max(max_count, n);
        }
        double mean = sum / static_cast<double>(deep_counts.size());
        report.max_mean_ratio =
            mean > 0.0 ? static_cast<double>(max_count) / mean : 0.0;
        std::vector<double> as_double(deep_counts.begin(),
                                      deep_counts.end());
        report.zipf_exponent = fitZipfExponent(std::move(as_double));
    }
    return report;
}

} // namespace serve
} // namespace hermes
