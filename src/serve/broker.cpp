#include "serve/broker.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/search_strategy.hpp"
#include "util/logging.hpp"
#include "vecstore/topk.hpp"

namespace hermes {
namespace serve {

HermesBroker::HermesBroker(const core::DistributedStore &store,
                           const BrokerConfig &config)
    : store_(store), config_(config)
{
    nodes_.reserve(store_.numClusters());
    for (std::size_t c = 0; c < store_.numClusters(); ++c) {
        NodeConfig node_config = config_.node;
        if (c < config_.node_faults.size())
            node_config.faults = config_.node_faults[c];
        nodes_.push_back(std::make_unique<RetrievalNode>(
            store_.clusterIndex(c), node_config));
    }
}

HermesBroker::~HermesBroker() = default;

vecstore::HitList
HermesBroker::search(vecstore::VecView query, std::size_t k) const
{
    std::vector<std::uint32_t> unused;
    return search(query, k, unused);
}

HermesBroker::NodeOutcome
HermesBroker::collect(std::future<NodeResponse> future, RetrievalNode &node,
                      vecstore::VecView query, std::size_t k,
                      const index::SearchParams &params,
                      std::uint64_t &timeouts,
                      std::uint64_t &failures) const
{
    NodeOutcome out;
    for (std::size_t attempt = 0;; ++attempt) {
        if (config_.node_deadline_ms > 0.0) {
            auto status = future.wait_for(
                std::chrono::duration<double, std::milli>(
                    config_.node_deadline_ms));
            if (status != std::future_status::ready) {
                ++timeouts;
                HERMES_WARN("node request missed its ",
                            config_.node_deadline_ms, " ms deadline "
                            "(attempt ", attempt + 1, ")");
                if (attempt < config_.max_retries) {
                    future = node.submit(query, k, params);
                    continue;
                }
                return out;
            }
        }
        try {
            out.response = future.get();
            out.ok = true;
            return out;
        } catch (const std::exception &e) {
            ++failures;
            HERMES_WARN("node request failed: ", e.what(), " (attempt ",
                        attempt + 1, ")");
        } catch (...) {
            ++failures;
            HERMES_WARN("node request failed with a non-standard "
                        "exception (attempt ", attempt + 1, ")");
        }
        if (attempt >= config_.max_retries)
            return out;
        future = node.submit(query, k, params);
    }
}

vecstore::HitList
HermesBroker::search(vecstore::VecView query, std::size_t k,
                     std::vector<std::uint32_t> &deep_clusters) const
{
    const auto &config = store_.config();
    const std::size_t n = nodes_.size();
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;

    // Phase 1: broadcast the sampling request (paper §4.2 step 2).
    index::SearchParams sample_params;
    sample_params.nprobe = config.sample_nprobe;
    std::vector<std::future<NodeResponse>> sample_futures;
    sample_futures.reserve(n);
    for (auto &node : nodes_) {
        sample_futures.push_back(
            node->submit(query, config.sample_k, sample_params));
    }

    // Rank clusters by best sampled document distance. A cluster whose
    // sampling request was lost (timeout/failure after retry) is simply
    // not a deep-search candidate this query.
    std::vector<std::pair<float, std::uint32_t>> ranked;
    std::vector<vecstore::HitList> sample_hits;
    ranked.reserve(n);
    sample_hits.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        auto outcome =
            collect(std::move(sample_futures[c]), *nodes_[c], query,
                    config.sample_k, sample_params, timeouts, failures);
        if (!outcome.ok)
            continue;
        float best = outcome.response.hits.empty()
            ? std::numeric_limits<float>::max()
            : outcome.response.hits.front().score;
        ranked.emplace_back(best, static_cast<std::uint32_t>(c));
        sample_hits.push_back(std::move(outcome.response.hits));
    }
    std::sort(ranked.begin(), ranked.end());

    if (ranked.empty()) {
        // Every node lost its sampling request. Best effort: deep-search
        // the configured number of clusters in id order anyway — some may
        // answer deep requests even after a lost sample.
        for (std::size_t c = 0;
             c < std::min(config.clusters_to_search, n); ++c) {
            ranked.emplace_back(std::numeric_limits<float>::max(),
                                static_cast<std::uint32_t>(c));
        }
    }

    // Phase 2: deep-search the top clusters (with optional adaptive
    // pruning, matching core::HermesSearch semantics).
    std::size_t deep = std::min(config.clusters_to_search, ranked.size());
    if (config.adaptive_epsilon > 0.0 && !ranked.empty()) {
        float bound = core::adaptivePruneBound(ranked.front().first,
                                               config.adaptive_epsilon);
        std::size_t keep = 0;
        while (keep < deep && ranked[keep].first <= bound)
            ++keep;
        deep = std::max<std::size_t>(keep, 1);
    }

    index::SearchParams deep_params;
    deep_params.nprobe = config.deep_nprobe;
    std::vector<std::future<NodeResponse>> deep_futures;
    deep_clusters.clear();
    for (std::size_t i = 0; i < deep; ++i) {
        std::uint32_t c = ranked[i].second;
        deep_clusters.push_back(c);
        deep_futures.push_back(nodes_[c]->submit(query, k, deep_params));
    }

    std::vector<vecstore::HitList> partials;
    partials.reserve(deep_futures.size());
    std::size_t deep_ok = 0;
    for (std::size_t i = 0; i < deep_futures.size(); ++i) {
        auto outcome = collect(std::move(deep_futures[i]),
                               *nodes_[deep_clusters[i]], query, k,
                               deep_params, timeouts, failures);
        if (outcome.ok) {
            partials.push_back(std::move(outcome.response.hits));
            ++deep_ok;
        }
    }

    // Graceful degradation: when a deep node was lost, backfill with the
    // sampling hits already in hand so the merged answer keeps as many of
    // the top-k as possible. Fewer than k hits can only happen when every
    // deep node failed and sampling yielded too little. Fault-free
    // queries never take this path, preserving bit-parity with
    // core::HermesSearch.
    if (deep_ok < deep) {
        for (auto &hits : sample_hits)
            partials.push_back(std::move(hits));
    }
    bool degraded = timeouts > 0 || failures > 0;

    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++queries_;
        deep_requests_ += deep;
        timeouts_ += timeouts;
        failures_ += failures;
        if (degraded)
            ++degraded_queries_;
    }
    return vecstore::mergeHitLists(partials, k);
}

BrokerStats
HermesBroker::stats() const
{
    BrokerStats stats;
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        stats.queries = queries_;
        stats.deep_requests = deep_requests_;
        stats.timeouts = timeouts_;
        stats.failures = failures_;
        stats.degraded_queries = degraded_queries_;
    }
    stats.nodes.reserve(nodes_.size());
    for (const auto &node : nodes_)
        stats.nodes.push_back(node->stats());
    return stats;
}

} // namespace serve
} // namespace hermes
