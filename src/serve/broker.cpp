#include "serve/broker.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"
#include "vecstore/topk.hpp"

namespace hermes {
namespace serve {

HermesBroker::HermesBroker(const core::DistributedStore &store,
                           const BrokerConfig &config)
    : store_(store), config_(config)
{
    nodes_.reserve(store_.numClusters());
    for (std::size_t c = 0; c < store_.numClusters(); ++c) {
        nodes_.push_back(std::make_unique<RetrievalNode>(
            store_.clusterIndex(c), config_.node));
    }
}

HermesBroker::~HermesBroker() = default;

vecstore::HitList
HermesBroker::search(vecstore::VecView query, std::size_t k) const
{
    std::vector<std::uint32_t> unused;
    return search(query, k, unused);
}

vecstore::HitList
HermesBroker::search(vecstore::VecView query, std::size_t k,
                     std::vector<std::uint32_t> &deep_clusters) const
{
    const auto &config = store_.config();
    const std::size_t n = nodes_.size();

    // Phase 1: broadcast the sampling request (paper §4.2 step 2).
    index::SearchParams sample_params;
    sample_params.nprobe = config.sample_nprobe;
    std::vector<std::future<NodeResponse>> sample_futures;
    sample_futures.reserve(n);
    for (auto &node : nodes_) {
        sample_futures.push_back(
            node->submit(query, config.sample_k, sample_params));
    }

    // Rank clusters by best sampled document distance.
    std::vector<std::pair<float, std::uint32_t>> ranked;
    ranked.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        auto response = sample_futures[c].get();
        float best = response.hits.empty()
            ? std::numeric_limits<float>::max()
            : response.hits.front().score;
        ranked.emplace_back(best, static_cast<std::uint32_t>(c));
    }
    std::sort(ranked.begin(), ranked.end());

    // Phase 2: deep-search the top clusters (with optional adaptive
    // pruning, matching core::HermesSearch semantics).
    std::size_t deep = std::min(config.clusters_to_search, ranked.size());
    if (config.adaptive_epsilon > 0.0 && !ranked.empty()) {
        float bound = ranked.front().first *
                      static_cast<float>(1.0 + config.adaptive_epsilon);
        std::size_t keep = 0;
        while (keep < deep && ranked[keep].first <= bound)
            ++keep;
        deep = std::max<std::size_t>(keep, 1);
    }

    index::SearchParams deep_params;
    deep_params.nprobe = config.deep_nprobe;
    std::vector<std::future<NodeResponse>> deep_futures;
    deep_clusters.clear();
    for (std::size_t i = 0; i < deep; ++i) {
        std::uint32_t c = ranked[i].second;
        deep_clusters.push_back(c);
        deep_futures.push_back(nodes_[c]->submit(query, k, deep_params));
    }

    std::vector<vecstore::HitList> partials;
    partials.reserve(deep_futures.size());
    for (auto &future : deep_futures)
        partials.push_back(future.get().hits);

    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++queries_;
        deep_requests_ += deep;
    }
    return vecstore::mergeHitLists(partials, k);
}

BrokerStats
HermesBroker::stats() const
{
    BrokerStats stats;
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        stats.queries = queries_;
        stats.deep_requests = deep_requests_;
    }
    stats.nodes.reserve(nodes_.size());
    for (const auto &node : nodes_)
        stats.nodes.push_back(node->stats());
    return stats;
}

} // namespace serve
} // namespace hermes
