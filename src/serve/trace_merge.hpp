/**
 * @file
 * Merging per-process Chrome trace dumps into one fleet-wide trace.
 *
 * Every hermes process records spans against its own TraceRecorder
 * epoch (steady_clock at start()). The broker's RemoteNodeClient
 * measures each shard's epoch offset during the Health handshake and
 * drops it into its own span stream as an `rpc.clock_sync` instant
 * (args: node_id, offset_us, rtt_us) — so a broker dump carries
 * everything needed to align the shard dumps that its queries touched,
 * even after every process has exited.
 *
 * mergeTraces() takes the broker dump plus N shard dumps (fetched from
 * their /trace.json endpoints or read from HERMES_TRACE_OUT files),
 * shifts each shard's timestamps by its measured offset, assigns each
 * process a distinct Chrome pid with a process_name metadata row, and
 * emits one trace-event JSON. Span identity (trace_id/span_id/
 * parent_span_id args) is preserved verbatim, so a query's tree spans
 * processes: broker.query > rpc.search > shard.search > node.search.
 *
 * Lives in serve (not obs) because it consumes JSON via util::minijson
 * and obs sits below util in the library stack.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hermes {
namespace serve {

/** One shard's clock alignment, recovered from a broker trace dump. */
struct TraceClockSync
{
    std::uint32_t node_id = 0;

    /** Shard trace-clock + offset_us = broker trace-clock. */
    double offset_us = 0.0;

    /** Handshake RTT; the alignment error is bounded by rtt_us / 2. */
    double rtt_us = 0.0;
};

/** One process's trace dump handed to the merger. */
struct TraceDumpInput
{
    /** Where it came from, for labels and warnings ("host:port",
     *  "file:shard1.json"). */
    std::string source;

    /** The dump itself (TraceRecorder::toJson() output). */
    std::string json;
};

/** Outcome of a merge. */
struct TraceMergeResult
{
    bool ok = false;
    std::string error; ///< set when !ok (unparseable broker dump)

    /** Merged Chrome trace-event JSON. */
    std::string json;

    std::size_t events = 0;    ///< trace events emitted (sans metadata)
    std::size_t processes = 0; ///< broker + shard dumps merged

    /** Non-fatal problems (unparseable shard dump, missing clock sync —
     *  the shard is merged unshifted in the latter case). */
    std::vector<std::string> warnings;
};

/**
 * Best clock sync per node_id from the `rpc.clock_sync` instants of a
 * broker trace dump: lowest RTT among the samples of each node's most
 * recent clock epoch (a restarted shard resets its trace clock, so
 * pre-restart samples are discarded rather than allowed to win on
 * RTT). Empty when the dump is unparseable or recorded no handshakes.
 */
std::vector<TraceClockSync> extractClockSyncs(const std::string &broker_json);

/**
 * Merge @p broker and @p shards into one Chrome trace. The broker
 * becomes pid 1; shard i becomes pid 2+i, labelled from its dump's
 * metadata ("process"/"cluster") or its source. Shard timestamps are
 * shifted onto the broker's clock via extractClockSyncs(); a shard
 * whose cluster has no recorded handshake merges unshifted with a
 * warning. Only an unparseable *broker* dump fails the merge.
 */
TraceMergeResult mergeTraces(const TraceDumpInput &broker,
                             const std::vector<TraceDumpInput> &shards);

/** Outcome of folding trace dumps into flame-graph stacks. */
struct FlameFoldResult
{
    bool ok = false;
    std::string error; ///< set when !ok (no dump parsed)

    /**
     * Folded-stack lines, "root;child;leaf <self_us>\n", sorted by
     * stack for determinism — the input format of flamegraph.pl and of
     * speedscope's "folded stacks" importer. Weights are self
     * microseconds (span duration minus direct children), so a stack's
     * total equals its spans' wall time without double counting.
     */
    std::string folded;

    std::size_t spans = 0;  ///< duration spans folded
    std::size_t stacks = 0; ///< distinct stacks emitted

    /** Non-fatal problems (an unparseable dump is skipped). */
    std::vector<std::string> warnings;
};

/**
 * Aggregate Chrome trace dumps (TraceRecorder::toJson() or
 * mergeTraces() output — any mix) into folded stacks. Ancestry comes
 * from the span identity each event carries in its args
 * (span_id/parent_span_id hex strings), not from timestamp nesting, so
 * stacks follow a query across threads and processes: a shard's
 * node.search folds under the broker's rpc.search even when the dumps
 * were recorded on different machines. Spans without identity (and
 * spans whose parent was sampled out) become roots; instants and
 * metadata rows are ignored.
 */
FlameFoldResult foldStacks(const std::vector<TraceDumpInput> &dumps);

} // namespace serve
} // namespace hermes
