/**
 * @file
 * The broker <-> shard RPC vocabulary: message types and their binary
 * encodings over net::Frame payloads (net/wire.hpp codec).
 *
 * Four request/response pairs carry the whole serving protocol:
 *
 *   Search        one query       -> hits + SearchStats
 *   SearchBatch   Q queries       -> Q x (hits + SearchStats), the wire
 *                                    twin of RetrievalNode micro-batching
 *   Stats         -               -> NodeStats + queue depth + shard size
 *   Health        -               -> protocol version, dim, shard size
 *
 * plus a typed Error response (timeout / bad request / internal /
 * shutting down). Request ids live in the frame header and are echoed
 * verbatim, so a client can match late responses after it has already
 * given up on them.
 *
 * Encoding invariants: decode functions throw net::WireError on any
 * truncated, over-long or trailing-garbage payload — a torn frame can
 * never silently decode into a shorter hit list.
 *
 * Protocol v2 (distributed tracing) extends v1 with *optional trailing*
 * fields, so every v1 payload is also a valid v2 payload:
 *
 *   SearchRequest       ... v1 fields ... [u8 flag=1, u64 trace_id,
 *                                          u64 parent_span_id]
 *   SearchBatchRequest  ... v1 fields ... [u32 n, n x (u32 slot,
 *                                          u64 trace_id, u64 parent)]
 *   HealthRequest       v1: empty; v2: u32 client protocol version
 *   HealthResponse      ... v1 fields ... [f64 trace_now_us]
 *
 * Compat rule (Health-gated): the shard answers a Health request with
 * protocol_version = min(client_version, kProtocolVersion) and only
 * appends v2 fields for v2+ clients; a client only injects trace
 * context once a Health handshake has established the peer speaks v2.
 * So v2 client + v1 shard degrades to untraced (the shard never sees
 * trailing bytes it cannot parse), and v1 client + v2 shard sees an
 * exact v1 conversation.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/ann_index.hpp"
#include "net/wire.hpp"
#include "obs/trace.hpp"
#include "serve/node.hpp"

namespace hermes {
namespace serve {
namespace rpc {

/** Bump when the wire encoding changes; negotiated via Health. */
constexpr std::uint32_t kProtocolVersion = 2;

/** Oldest peer protocol this build still interoperates with. */
constexpr std::uint32_t kMinProtocolVersion = 1;

/** Frame types (net::Frame::type). Responses = request | 0x100. */
enum class Type : std::uint32_t {
    SearchRequest = 1,
    SearchBatchRequest = 2,
    StatsRequest = 3,
    HealthRequest = 4,

    SearchResponse = 0x101,
    SearchBatchResponse = 0x102,
    StatsResponse = 0x103,
    HealthResponse = 0x104,

    ErrorResponse = 0x1FF,
};

/** Typed failure classes carried by an ErrorResponse. */
enum class ErrorCode : std::uint32_t {
    Timeout = 1,    ///< Shard-side wait on the node future expired.
    BadRequest = 2, ///< Undecodable payload or dimension mismatch.
    Internal = 3,   ///< Shard search threw (real or injected fault).
    Shutdown = 4,   ///< Shard is stopping; retry elsewhere/later.
};

/** One search request (SearchRequest / per-query slice of a batch). */
struct SearchRequest
{
    std::size_t k = 0;
    index::SearchParams params;

    /**
     * Client-side deadline budget in ms; the shard bounds its wait on
     * the node future by this (plus slack) so a dropped request cannot
     * wedge the connection. <= 0 means no deadline (wait forever).
     */
    double deadline_ms = 0.0;

    std::vector<float> query;

    /**
     * Propagated trace context (v2). Encoded as an optional trailing
     * block only when trace.active; absent on the wire decodes as an
     * inactive context, so v1 frames round-trip unchanged.
     */
    obs::TraceContextSnapshot trace;
};

/** A batched search: Q queries sharing (k, params). */
struct SearchBatchRequest
{
    std::size_t k = 0;
    index::SearchParams params;
    double deadline_ms = 0.0;
    std::size_t dim = 0;

    /** Row-major Q x dim query block. */
    std::vector<float> queries;

    /**
     * Per-query trace contexts (v2): empty, or exactly numQueries()
     * entries (inactive slots for untraced members). Encoded sparsely
     * as a trailing (slot, trace_id, parent_span_id) list of the
     * active entries only; an empty list is omitted entirely.
     */
    std::vector<obs::TraceContextSnapshot> traces;

    std::size_t
    numQueries() const
    {
        return dim ? queries.size() / dim : 0;
    }
};

/** Stats reply: the node's counters plus instantaneous queue/shard. */
struct StatsResponse
{
    NodeStats stats;
    std::uint64_t queue_depth = 0;
    std::uint64_t shard_vectors = 0;
};

/** Health reply: who am I, do we speak the same protocol. */
struct HealthResponse
{
    /** min(client version, shard version) — what this conversation
     *  will speak. A v1 client therefore sees exactly "1". */
    std::uint32_t protocol_version = kProtocolVersion;
    std::uint32_t node_id = 0;
    std::uint32_t dim = 0;
    std::uint64_t shard_vectors = 0;

    /**
     * v2: the shard's TraceRecorder clock ("microseconds since its
     * trace epoch") read while encoding this reply. The client brackets
     * the RPC on its own trace clock and derives the epoch offset
     * (error bounded by RTT/2) used to align merged traces.
     */
    double trace_now_us = 0.0;
    bool has_clock = false;
};

/** Typed error body. */
struct ErrorBody
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

std::string encodeSearchRequest(const SearchRequest &request);
SearchRequest decodeSearchRequest(std::string_view payload);

std::string encodeSearchBatchRequest(const SearchBatchRequest &request);
SearchBatchRequest decodeSearchBatchRequest(std::string_view payload);

std::string encodeSearchResponse(const NodeResponse &response);
NodeResponse decodeSearchResponse(std::string_view payload);

std::string
encodeSearchBatchResponse(const std::vector<NodeResponse> &responses);
std::vector<NodeResponse>
decodeSearchBatchResponse(std::string_view payload);

std::string encodeStatsResponse(const StatsResponse &response);
StatsResponse decodeStatsResponse(std::string_view payload);

/** v2 Health request body (client announces its protocol version).
 *  v1 clients send an empty payload. */
std::string encodeHealthRequest(std::uint32_t client_version);

/** Empty payload (v1 client) decodes as version 1. */
std::uint32_t decodeHealthRequest(std::string_view payload);

std::string encodeHealthResponse(const HealthResponse &response);
HealthResponse decodeHealthResponse(std::string_view payload);

std::string encodeError(ErrorCode code, const std::string &message);
ErrorBody decodeError(std::string_view payload);

} // namespace rpc
} // namespace serve
} // namespace hermes
