/**
 * @file
 * The broker <-> shard RPC vocabulary: message types and their binary
 * encodings over net::Frame payloads (net/wire.hpp codec).
 *
 * Four request/response pairs carry the whole serving protocol:
 *
 *   Search        one query       -> hits + SearchStats
 *   SearchBatch   Q queries       -> Q x (hits + SearchStats), the wire
 *                                    twin of RetrievalNode micro-batching
 *   Stats         -               -> NodeStats + queue depth + shard size
 *   Health        -               -> protocol version, dim, shard size
 *
 * plus a typed Error response (timeout / bad request / internal /
 * shutting down). Request ids live in the frame header and are echoed
 * verbatim, so a client can match late responses after it has already
 * given up on them.
 *
 * Encoding invariants: decode functions throw net::WireError on any
 * truncated, over-long or trailing-garbage payload — a torn frame can
 * never silently decode into a shorter hit list.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/ann_index.hpp"
#include "net/wire.hpp"
#include "serve/node.hpp"

namespace hermes {
namespace serve {
namespace rpc {

/** Bump when the wire encoding changes; checked in the Health reply. */
constexpr std::uint32_t kProtocolVersion = 1;

/** Frame types (net::Frame::type). Responses = request | 0x100. */
enum class Type : std::uint32_t {
    SearchRequest = 1,
    SearchBatchRequest = 2,
    StatsRequest = 3,
    HealthRequest = 4,

    SearchResponse = 0x101,
    SearchBatchResponse = 0x102,
    StatsResponse = 0x103,
    HealthResponse = 0x104,

    ErrorResponse = 0x1FF,
};

/** Typed failure classes carried by an ErrorResponse. */
enum class ErrorCode : std::uint32_t {
    Timeout = 1,    ///< Shard-side wait on the node future expired.
    BadRequest = 2, ///< Undecodable payload or dimension mismatch.
    Internal = 3,   ///< Shard search threw (real or injected fault).
    Shutdown = 4,   ///< Shard is stopping; retry elsewhere/later.
};

/** One search request (SearchRequest / per-query slice of a batch). */
struct SearchRequest
{
    std::size_t k = 0;
    index::SearchParams params;

    /**
     * Client-side deadline budget in ms; the shard bounds its wait on
     * the node future by this (plus slack) so a dropped request cannot
     * wedge the connection. <= 0 means no deadline (wait forever).
     */
    double deadline_ms = 0.0;

    std::vector<float> query;
};

/** A batched search: Q queries sharing (k, params). */
struct SearchBatchRequest
{
    std::size_t k = 0;
    index::SearchParams params;
    double deadline_ms = 0.0;
    std::size_t dim = 0;

    /** Row-major Q x dim query block. */
    std::vector<float> queries;

    std::size_t
    numQueries() const
    {
        return dim ? queries.size() / dim : 0;
    }
};

/** Stats reply: the node's counters plus instantaneous queue/shard. */
struct StatsResponse
{
    NodeStats stats;
    std::uint64_t queue_depth = 0;
    std::uint64_t shard_vectors = 0;
};

/** Health reply: who am I, do we speak the same protocol. */
struct HealthResponse
{
    std::uint32_t protocol_version = kProtocolVersion;
    std::uint32_t node_id = 0;
    std::uint32_t dim = 0;
    std::uint64_t shard_vectors = 0;
};

/** Typed error body. */
struct ErrorBody
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

std::string encodeSearchRequest(const SearchRequest &request);
SearchRequest decodeSearchRequest(std::string_view payload);

std::string encodeSearchBatchRequest(const SearchBatchRequest &request);
SearchBatchRequest decodeSearchBatchRequest(std::string_view payload);

std::string encodeSearchResponse(const NodeResponse &response);
NodeResponse decodeSearchResponse(std::string_view payload);

std::string
encodeSearchBatchResponse(const std::vector<NodeResponse> &responses);
std::vector<NodeResponse>
decodeSearchBatchResponse(std::string_view payload);

std::string encodeStatsResponse(const StatsResponse &response);
StatsResponse decodeStatsResponse(std::string_view payload);

std::string encodeHealthResponse(const HealthResponse &response);
HealthResponse decodeHealthResponse(std::string_view payload);

std::string encodeError(ErrorCode code, const std::string &message);
ErrorBody decodeError(std::string_view payload);

} // namespace rpc
} // namespace serve
} // namespace hermes
