/**
 * @file
 * A retrieval node: one cluster index behind an asynchronous request
 * queue with its own worker thread.
 *
 * This is the online-serving half of the paper's system (Fig 9 right):
 * each similarity cluster's IVF index lives on its own node; the broker
 * (serve/broker.hpp) fans sampling and deep-search requests out to nodes
 * and aggregates. Within a node, queued requests are drained in batches,
 * mirroring FAISS's batch scheduling.
 */

#pragma once

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "index/ann_index.hpp"

namespace hermes {
namespace serve {

/** One node-level search response. */
struct NodeResponse
{
    /** Hits from this node's shard, best first. */
    vecstore::HitList hits;

    /** Work counters for this request. */
    index::SearchStats stats;
};

/** Node configuration. */
struct NodeConfig
{
    /** Max requests drained per processing round. */
    std::size_t max_batch = 64;
};

/** Runtime statistics of a node. */
struct NodeStats
{
    /** Requests completed. */
    std::uint64_t requests = 0;

    /** Processing rounds executed. */
    std::uint64_t batches = 0;

    /** Total seconds spent searching. */
    double busy_seconds = 0.0;

    /** Vectors scanned across all requests. */
    std::uint64_t vectors_scanned = 0;
};

/**
 * Asynchronous wrapper around one shard index.
 *
 * Thread-safe: any number of producers may submit() concurrently; a
 * single worker thread owns the underlying (immutable) index during
 * serving. The referenced index must outlive the node.
 */
class RetrievalNode
{
  public:
    /**
     * @param shard  The cluster's index (not owned; must be trained).
     * @param config Queue/batching parameters.
     */
    RetrievalNode(const index::AnnIndex &shard, const NodeConfig &config);

    RetrievalNode(const RetrievalNode &) = delete;
    RetrievalNode &operator=(const RetrievalNode &) = delete;

    /** Drains the queue and joins the worker. */
    ~RetrievalNode();

    /**
     * Enqueue a search. The query is copied, so the caller's buffer may
     * be reused immediately.
     */
    std::future<NodeResponse> submit(vecstore::VecView query, std::size_t k,
                                     const index::SearchParams &params);

    /** Snapshot of runtime statistics. */
    NodeStats stats() const;

    /** Vectors stored on this node. */
    std::size_t shardSize() const { return shard_.size(); }

  private:
    struct Request
    {
        std::vector<float> query;
        std::size_t k;
        index::SearchParams params;
        std::promise<NodeResponse> promise;
    };

    void workerLoop();

    const index::AnnIndex &shard_;
    NodeConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool stopping_ = false;
    NodeStats stats_;

    std::thread worker_;
};

} // namespace serve
} // namespace hermes
