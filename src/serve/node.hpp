/**
 * @file
 * A retrieval node: one cluster index behind an asynchronous request
 * queue with its own worker thread.
 *
 * This is the online-serving half of the paper's system (Fig 9 right):
 * each similarity cluster's IVF index lives on its own node; the broker
 * (serve/broker.hpp) fans sampling and deep-search requests out to nodes
 * and aggregates. Within a node, queued requests are drained in batches,
 * mirroring FAISS's batch scheduling.
 *
 * Fault model: a shard search that throws fulfils the request's promise
 * via set_exception, so the caller sees the error instead of a broken
 * future (and the worker thread survives). NodeConfig::faults injects
 * probabilistic failures/delays/drops for tests and benches.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "index/ann_index.hpp"
#include "obs/trace.hpp"
#include "sim/hardware.hpp"
#include "util/rng.hpp"

namespace hermes {
namespace serve {

/** One node-level search response. */
struct NodeResponse
{
    /** Hits from this node's shard, best first. */
    vecstore::HitList hits;

    /** Work counters for this request. */
    index::SearchStats stats;
};

/**
 * Deterministic fault injection knobs (all off by default). Decisions
 * are drawn per request from a util::Rng seeded with @p seed, so a run
 * is exactly reproducible.
 */
struct FaultInjector
{
    /** Probability a request fails with an injected exception. */
    double fail_probability = 0.0;

    /**
     * Probability a request is dropped: the promise is parked unfulfilled
     * until node shutdown, so the caller's future never becomes ready —
     * a dead node, observable only through a deadline.
     */
    double drop_probability = 0.0;

    /** Probability a request is served after an added delay. */
    double delay_probability = 0.0;

    /** Added delay in milliseconds for delayed requests. */
    double delay_ms = 0.0;

    /** Seed for the per-node fault stream. */
    std::uint64_t seed = 0x5eedfa11ull;

    /** True when any fault class is enabled. */
    bool
    enabled() const
    {
        return fail_probability > 0.0 || drop_probability > 0.0 ||
               delay_probability > 0.0;
    }
};

/** Node configuration. */
struct NodeConfig
{
    /** Max requests drained per processing round. */
    std::size_t max_batch = 64;

    /**
     * Micro-batching window in microseconds (0 = off). After the first
     * request of a round arrives, the worker keeps the drain open until
     * either max_batch requests are queued or the *oldest* waiting
     * request has been enqueued for this long — so the added latency per
     * request is bounded by the window. Coalesced requests with equal
     * (k, nprobe, ef_search, prune_ratio) are executed through the
     * shard's list-major searchBatch, amortizing hot-list scans across
     * the batch (paper §6 throughput mode). Grouped execution happens
     * whenever a drain yields multiple compatible requests, window or
     * not; the window only makes such drains likelier under load.
     */
    double batch_window_us = 0.0;

    /** Fault injection (tests/benches only; defaults to disabled). */
    FaultInjector faults;

    /**
     * Cluster id of the shard this node serves, attached to trace spans
     * and debug logs (the broker sets it; standalone nodes default to 0).
     */
    std::size_t node_id = 0;

    /**
     * Modeled CPU for energy attribution (sim::cpuProfile). The worker
     * accrues busy-interval dynamic energy for its one core into
     * NodeStats::energy_joules and the `node.<c>.energy_j` gauge,
     * reproducing the paper's per-node energy accounting (Fig 18) on
     * live traffic; the idle/static share is added by the broker's
     * LoadReport from wall time. Set model_energy=false to skip.
     */
    sim::CpuModel cpu_model = sim::CpuModel::XeonGold6448Y;
    bool model_energy = true;
};

/** Runtime statistics of a node. */
struct NodeStats
{
    /** Requests completed. */
    std::uint64_t requests = 0;

    /** Processing rounds executed. */
    std::uint64_t batches = 0;

    /** Total seconds spent searching. */
    double busy_seconds = 0.0;

    /** Vectors scanned across all requests. */
    std::uint64_t vectors_scanned = 0;

    /** Requests that completed with an exception (real or injected). */
    std::uint64_t failures = 0;

    /** Requests dropped by fault injection (never fulfilled). */
    std::uint64_t dropped = 0;

    /** Hits returned across all completed requests. */
    std::uint64_t hits_returned = 0;

    /**
     * Modeled dynamic energy (joules) of this node's busy intervals
     * under NodeConfig::cpu_model (0 when model_energy is off).
     */
    double energy_joules = 0.0;
};

/**
 * Asynchronous wrapper around one shard index.
 *
 * Thread-safe: any number of producers may submit() concurrently; a
 * single worker thread owns the underlying (immutable) index during
 * serving. The referenced index must outlive the node.
 */
class RetrievalNode
{
  public:
    /**
     * @param shard  The cluster's index (not owned; must be trained).
     * @param config Queue/batching parameters.
     */
    RetrievalNode(const index::AnnIndex &shard, const NodeConfig &config);

    RetrievalNode(const RetrievalNode &) = delete;
    RetrievalNode &operator=(const RetrievalNode &) = delete;

    /** Drains the queue and joins the worker. */
    ~RetrievalNode();

    /**
     * Enqueue a search. The query is copied, so the caller's buffer may
     * be reused immediately. The returned future either yields a
     * response or rethrows the shard's exception; with drop-injection
     * it may only become ready (broken promise) at node shutdown.
     */
    std::future<NodeResponse> submit(vecstore::VecView query, std::size_t k,
                                     const index::SearchParams &params);

    /** Snapshot of runtime statistics. */
    NodeStats stats() const;

    /** Requests currently waiting in the queue. */
    std::size_t queueDepth() const;

    /** Vectors stored on this node. */
    std::size_t shardSize() const { return shard_.size(); }

  private:
    struct Request
    {
        std::vector<float> query;
        std::size_t k;
        index::SearchParams params;
        std::promise<NodeResponse> promise;

        /** Enqueue time, for the queue-wait histogram and trace span. */
        std::chrono::steady_clock::time_point enqueued;

        /** Submitting thread's trace context (identity + parent span),
         *  re-adopted on the worker thread so this request's spans stay
         *  in the submitter's trace — which may have started in another
         *  process when the submitter is a ShardServer handler. */
        obs::TraceContextSnapshot trace;
    };

    void workerLoop();

    const index::AnnIndex &shard_;
    NodeConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Request> queue_;
    bool stopping_ = false;
    NodeStats stats_;

    /** Fault stream; touched only by the worker thread. */
    util::Rng fault_rng_;

    /** Promises of dropped requests, parked until shutdown so their
     *  futures stay pending (simulating a dead node). */
    std::vector<std::promise<NodeResponse>> dropped_;

    std::thread worker_;
};

} // namespace serve
} // namespace hermes
