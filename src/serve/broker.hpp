/**
 * @file
 * The Hermes scheduler/broker (paper Fig 9: "Hermes Scheduler").
 *
 * Owns a fleet of NodeClients — in-process RetrievalNode workers or
 * RemoteNodeClients speaking the framed protocol to hermes_shard
 * processes — and executes the hierarchical search protocol across
 * them:
 *   1. broadcast a cheap sampling request to every cluster (in parallel),
 *   2. rank clusters by their best sampled document,
 *   3. send deep-search requests to the top clusters (in parallel),
 *   4. merge, dedupe and truncate to the final top-k.
 *
 * On a fault-free run, results are bit-identical to core::HermesSearch on
 * the same store; the broker adds the concurrency and queueing of a real
 * deployment.
 *
 * Skew mitigation (paper §6 turned from observation into action): a
 * cluster may be served by R > 1 bit-identical replicas (ReplicaMap).
 * Each probe for a replicated cluster is routed by power-of-two-choices
 * over live queue depth — sample two replicas, pick the shallower queue
 * — which bounds the hot cluster's queueing tail at a fraction of the
 * cost of tracking global state. Straggling sample-phase probes are
 * hedged: once a probe outlives the windowed p95 of recent probe
 * latencies, a duplicate is sent to a second replica and the first
 * response wins; the loser's future is simply abandoned (futures are
 * promise-backed on both node client kinds, so discarding a late
 * response never blocks or leaks). Replicas hold copies of the same
 * immutable index, so routing and hedging cannot change results —
 * unreplicated brokers take the exact pre-replication code path.
 *
 * Fault model: every node request carries a deadline and one bounded
 * retry; with replicas, retries rotate to the next replica so a dead
 * node's traffic drains to its peers. A node that times out or throws
 * is logged and counted (BrokerStats::timeouts / failures); the query
 * degrades gracefully by merging whatever partial results arrived —
 * padded with the sampling hits when a deep node was lost — and only
 * returns fewer than k hits when every deep node failed
 * (BrokerStats::degraded_queries observes all such queries).
 */

#pragma once

#include <chrono>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/distributed_store.hpp"
#include "obs/obs.hpp"
#include "serve/load_report.hpp"
#include "serve/node.hpp"
#include "serve/node_client.hpp"
#include "serve/replica_map.hpp"

namespace hermes {
namespace serve {

/** Hedged-request tuning for straggling sample-phase probes. */
struct HedgeConfig
{
    /** Master switch; off = exactly the pre-hedging wait loop. */
    bool enabled = true;

    /** Probe-latency percentile that arms the hedge (p95: a probe
     *  slower than 95% of its recent peers is a straggler). */
    double quantile = 95.0;

    /** Probe latencies that must be in the window before the trigger
     *  is trusted (cold brokers never hedge). */
    std::size_t min_samples = 32;

    /** Floor on the trigger so microsecond-fast fleets don't hedge
     *  every probe on scheduling jitter. */
    double min_trigger_us = 200.0;

    /** Poll granularity of the first-response-wins race. */
    double poll_us = 100.0;
};

/** Broker configuration. */
struct BrokerConfig
{
    /** Per-node queue/batching parameters. Opt into micro-batching by
     *  setting node.batch_window_us > 0: concurrent search() callers
     *  whose sample/deep requests land on the same node within the
     *  window are coalesced into one list-major shard scan. The window
     *  bounds the latency it can add per request, so PR 1 deadlines and
     *  degradation semantics are unchanged (the deadline clock starts at
     *  submit and already covers queue time). */
    NodeConfig node;

    /**
     * Per-node fault-injection overrides (tests/benches): when
     * non-empty, node c uses node_faults[c] instead of node.faults,
     * letting a single cluster of many be failed. Shorter-than-numNodes
     * vectors leave the remaining nodes on node.faults. Replicas built
     * by `replicate` inherit their cluster's override.
     */
    std::vector<FaultInjector> node_faults;

    /**
     * Deadline in milliseconds for each node request (sampling and deep
     * search alike). A request that is not ready by then counts as a
     * timeout and is retried/abandoned. 0 waits forever (pre-fault-
     * tolerance behaviour; a dead node then hangs the query) and
     * disables hedging.
     */
    double node_deadline_ms = 2000.0;

    /** Bounded resubmits after a timeout or failure (per request). */
    std::size_t max_retries = 1;

    /**
     * Static replication for the store-backed constructor: (cluster,
     * total replicas) pairs; each listed cluster is served by that many
     * LocalNodeClients over the same immutable shard index. Counts of
     * 0/1 are no-ops. Ignored by the node-list constructor (use
     * replica_map there).
     */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> replicate;

    /**
     * Cluster->node assignment for the node-list constructor. Empty =
     * identity (node i serves cluster i, the pre-replication shape).
     * When set it must be complete() and reference exactly the nodes
     * passed in.
     */
    ReplicaMap replica_map;

    /** Hedged-request policy for sample-phase probes. Only engages for
     *  clusters with >= 2 replicas, so unreplicated brokers are
     *  bit-for-bit on the pre-hedging path. */
    HedgeConfig hedge;
};

/** Aggregate serving statistics. */
struct BrokerStats
{
    /** Queries served end-to-end. */
    std::uint64_t queries = 0;

    /** Deep-search requests issued (queries x clusters searched). */
    std::uint64_t deep_requests = 0;

    /** Node waits that missed their deadline (a retry that times out
     *  again counts twice). */
    std::uint64_t timeouts = 0;

    /** Node requests that completed with an exception. */
    std::uint64_t failures = 0;

    /** Queries that lost at least one node (timeout or failure) and
     *  were answered from partial results. */
    std::uint64_t degraded_queries = 0;

    /** Hedged sample probes issued / won by the duplicate / issued but
     *  the primary still won (duplicate work discarded). */
    std::uint64_t hedges_issued = 0;
    std::uint64_t hedges_won = 0;
    std::uint64_t hedges_wasted = 0;

    /**
     * Latency digests sourced from the process-wide obs histograms
     * (`broker.query_latency_us` and friends). Note these aggregate
     * over every broker in the process — with a single broker, which
     * is the deployment shape, they are exactly this broker's.
     */
    obs::LatencySummary query_latency;   ///< end-to-end search()
    obs::LatencySummary sample_phase;    ///< sampling broadcast + collect
    obs::LatencySummary deep_phase;      ///< deep fan-out + collect
    obs::LatencySummary merge_phase;     ///< final merge/dedupe/truncate

    /** Per-node runtime statistics, in node order (replicas included). */
    std::vector<NodeStats> nodes;

    /** Cluster served by each node in `nodes` (node_clusters[i] is the
     *  cluster of nodes[i]; identity when unreplicated). */
    std::vector<std::uint32_t> node_clusters;
};

/** Distributed hierarchical-search front end. */
class HermesBroker
{
  public:
    /**
     * @param store  Distributed store whose cluster indices the nodes
     *               serve (must outlive the broker).
     * @param config Broker parameters; config.replicate adds extra
     *               in-process replicas over the same shard indices.
     */
    explicit HermesBroker(const core::DistributedStore &store,
                          const BrokerConfig &config = {});

    /**
     * Placement-agnostic constructor: NodeClients assigned to clusters
     * by config.replica_map (empty = one node per cluster, in
     * cluster-id order). This is how an out-of-process fleet is wired —
     * RemoteNodeClients pointing at hermes_shard endpoints — but any
     * mix of local and remote nodes works; scheduling, deadlines,
     * retries and degradation are identical either way.
     *
     * @param hermes_config The store configuration (sampling / deep
     *                      depths, clusters_to_search, ...). Must match
     *                      what the shards were built with for results
     *                      to mean anything.
     */
    HermesBroker(const core::HermesConfig &hermes_config,
                 std::vector<std::unique_ptr<NodeClient>> nodes,
                 const BrokerConfig &config = {});

    ~HermesBroker();

    HermesBroker(const HermesBroker &) = delete;
    HermesBroker &operator=(const HermesBroker &) = delete;

    /**
     * Execute one hierarchical search. Sampling and deep-search requests
     * run concurrently across node workers; the calling thread blocks
     * only on aggregation. Safe to call from many threads at once.
     * Never throws on node faults; see the file-level fault model.
     */
    vecstore::HitList search(vecstore::VecView query, std::size_t k) const;

    /** Like search(), but also reports which clusters were deep-searched. */
    vecstore::HitList search(vecstore::VecView query, std::size_t k,
                             std::vector<std::uint32_t>
                                 &deep_clusters) const;

    /**
     * Attach another replica of @p cluster at runtime (any NodeClient;
     * its shard must be a bit-identical copy of the cluster's index).
     * In-flight queries keep the topology snapshot they started with
     * and see the new replica on their next search.
     */
    void addReplica(std::uint32_t cluster,
                    std::unique_ptr<NodeClient> node);

    /**
     * Act on the live load report: plan extra replicas for hot clusters
     * (ReplicaMap::planFromLoad) and spin up LocalNodeClients over the
     * store's shard indices. Only available on store-backed brokers
     * (the node-list constructor has no shard to clone; returns 0).
     * Returns the number of replicas added.
     */
    std::size_t autoReplicate(const ReplicationPolicy &policy = {});

    /** Replicas currently serving @p cluster. */
    std::size_t replicaCount(std::uint32_t cluster) const;

    /** Snapshot of serving statistics. */
    BrokerStats stats() const;

    /**
     * Fleet-level load snapshot: per-cluster traffic/queue/energy plus
     * skew diagnostics over the deep-request distribution. @p window_s
     * bounds the windowed QPS/latency figures (clamped to the ring).
     * Safe to call concurrently with search().
     */
    LoadReport loadReport(
        std::size_t window_s = obs::kDefaultWindowSeconds) const;

    /** Number of serving nodes (replicas included). */
    std::size_t numNodes() const;

    /** Number of clusters (fixed at construction). */
    std::size_t numClusters() const { return cluster_counters_.size(); }

  private:
    /** One replica of one cluster, as seen by the router. */
    struct ReplicaSlot
    {
        /** Borrowed from nodes_; valid for the broker's lifetime
         *  (nodes are never removed, only added). */
        NodeClient *node = nullptr;

        /** Index into nodes_ / BrokerStats::nodes. */
        std::uint32_t node_index = 0;

        /** Canonical broker.route.<cluster>.<slot> counter. */
        obs::Counter *routed = nullptr;
    };

    /** Per-cluster replica slots; copied per query under a shared lock
     *  so addReplica() can grow it concurrently. */
    using Topology = std::vector<std::vector<ReplicaSlot>>;

    /** Outcome of one node request after deadline/retry handling. */
    struct NodeOutcome
    {
        bool ok = false;
        NodeResponse response;
    };

    /**
     * Power-of-two-choices: with one slot return it outright (no RNG —
     * the unreplicated path stays byte-for-byte deterministic);
     * otherwise sample two distinct slots uniformly and take the
     * shallower queue, ties to the first (itself uniformly random, so
     * idle fleets spread uniformly instead of pinning slot 0).
     */
    std::size_t pickSlot(const std::vector<ReplicaSlot> &slots) const;

    /**
     * Wait for @p future under the configured deadline, retrying via a
     * fresh submit() up to max_retries times on timeout or exception.
     * Retries rotate over @p slots starting after @p primary_slot (a
     * single replica degenerates to resubmitting to the same node).
     * Folds timeout/failure counts into @p timeouts / @p failures.
     */
    NodeOutcome collect(std::future<NodeResponse> future,
                        const std::vector<ReplicaSlot> &slots,
                        std::size_t primary_slot, vecstore::VecView query,
                        std::size_t k, const index::SearchParams &params,
                        std::uint64_t &timeouts,
                        std::uint64_t &failures) const;

    /**
     * First-response-wins wait for a sample probe with a hedge: if the
     * primary is still pending @p trigger_us after submit, duplicate
     * the probe to the least-loaded other replica and race the two;
     * the losing future is abandoned (safe: promise-backed). A lane
     * that fails is retired; when all lanes are dead and the resubmit
     * budget allows, a fresh lane is opened on the next replica
     * (failover, not counted as a hedge). Returns !ok only after the
     * deadline expires or the budget is exhausted.
     */
    NodeOutcome collectHedged(std::future<NodeResponse> future,
                              const std::vector<ReplicaSlot> &slots,
                              std::size_t primary_slot,
                              std::chrono::steady_clock::time_point submitted,
                              double trigger_us,
                              vecstore::VecView query, std::size_t k,
                              const index::SearchParams &params,
                              std::uint64_t &timeouts,
                              std::uint64_t &failures,
                              std::uint64_t &hedges_issued,
                              std::uint64_t &hedges_won,
                              std::uint64_t &hedges_wasted) const;

    /** Build topology_/node_clusters_ from @p map (constructors). */
    void initTopology(const ReplicaMap &map);

    /** Shared tail of both constructors (registry counters). */
    void initCounters();

    core::HermesConfig hermes_config_;
    BrokerConfig config_;

    /** Shard source for autoReplicate(); null for node-list brokers. */
    const core::DistributedStore *store_ = nullptr;

    /** All node clients, primaries first (node index = position).
     *  Append-only: replicas are pushed, never removed, so borrowed
     *  NodeClient pointers in topology snapshots stay valid. */
    std::vector<std::unique_ptr<NodeClient>> nodes_;

    /** Cluster -> replica slots; guarded by topology_mutex_ together
     *  with nodes_ and node_clusters_. */
    Topology topology_;
    std::vector<std::uint32_t> node_clusters_;
    mutable std::shared_mutex topology_mutex_;

    /** Cached refs into the process-wide metrics registry (stable).
     *  Query latency and query count carry rolling windows so the live
     *  endpoints can report last-N-seconds QPS/percentiles; the
     *  per-probe histogram feeds the hedge trigger. */
    obs::WindowedHistogram &h_query_latency_;
    obs::Histogram &h_sample_phase_;
    obs::Histogram &h_deep_phase_;
    obs::Histogram &h_merge_phase_;
    obs::WindowedCounter &c_queries_;
    obs::WindowedHistogram &h_sample_probe_us_;

    /** Per-cluster request accounting (index = cluster id). */
    struct ClusterCounters
    {
        obs::Counter &sample_requests;
        obs::Counter &deep_requests;
        obs::Counter &hits_returned;
    };
    std::vector<ClusterCounters> cluster_counters_;

    /** Construction time, for uptime/utilization in loadReport(). */
    std::chrono::steady_clock::time_point start_time_;

    mutable std::mutex stats_mutex_;
    mutable std::uint64_t queries_ = 0;
    mutable std::uint64_t deep_requests_ = 0;
    mutable std::uint64_t timeouts_ = 0;
    mutable std::uint64_t failures_ = 0;
    mutable std::uint64_t degraded_queries_ = 0;
    mutable std::uint64_t hedges_issued_ = 0;
    mutable std::uint64_t hedges_won_ = 0;
    mutable std::uint64_t hedges_wasted_ = 0;
};

} // namespace serve
} // namespace hermes
