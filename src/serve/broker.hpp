/**
 * @file
 * The Hermes scheduler/broker (paper Fig 9: "Hermes Scheduler").
 *
 * Owns one NodeClient per cluster — an in-process RetrievalNode worker
 * or a RemoteNodeClient speaking the framed protocol to a hermes_shard
 * process — and executes the hierarchical search protocol across them:
 *   1. broadcast a cheap sampling request to every node (in parallel),
 *   2. rank clusters by their best sampled document,
 *   3. send deep-search requests to the top clusters (in parallel),
 *   4. merge, dedupe and truncate to the final top-k.
 *
 * On a fault-free run, results are bit-identical to core::HermesSearch on
 * the same store; the broker adds the concurrency and queueing of a real
 * deployment.
 *
 * Fault model: every node request carries a deadline and one bounded
 * retry. A node that times out or throws is logged and counted
 * (BrokerStats::timeouts / failures); the query degrades gracefully by
 * merging whatever partial results arrived — padded with the sampling
 * hits when a deep node was lost — and only returns fewer than k hits
 * when every deep node failed (BrokerStats::degraded_queries observes
 * all such queries).
 */

#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "core/distributed_store.hpp"
#include "obs/obs.hpp"
#include "serve/load_report.hpp"
#include "serve/node.hpp"
#include "serve/node_client.hpp"

namespace hermes {
namespace serve {

/** Broker configuration. */
struct BrokerConfig
{
    /** Per-node queue/batching parameters. Opt into micro-batching by
     *  setting node.batch_window_us > 0: concurrent search() callers
     *  whose sample/deep requests land on the same node within the
     *  window are coalesced into one list-major shard scan. The window
     *  bounds the latency it can add per request, so PR 1 deadlines and
     *  degradation semantics are unchanged (the deadline clock starts at
     *  submit and already covers queue time). */
    NodeConfig node;

    /**
     * Per-node fault-injection overrides (tests/benches): when
     * non-empty, node c uses node_faults[c] instead of node.faults,
     * letting a single cluster of many be failed. Shorter-than-numNodes
     * vectors leave the remaining nodes on node.faults.
     */
    std::vector<FaultInjector> node_faults;

    /**
     * Deadline in milliseconds for each node request (sampling and deep
     * search alike). A request that is not ready by then counts as a
     * timeout and is retried/abandoned. 0 waits forever (pre-fault-
     * tolerance behaviour; a dead node then hangs the query).
     */
    double node_deadline_ms = 2000.0;

    /** Bounded resubmits after a timeout or failure (per request). */
    std::size_t max_retries = 1;
};

/** Aggregate serving statistics. */
struct BrokerStats
{
    /** Queries served end-to-end. */
    std::uint64_t queries = 0;

    /** Deep-search requests issued (queries x clusters searched). */
    std::uint64_t deep_requests = 0;

    /** Node waits that missed their deadline (a retry that times out
     *  again counts twice). */
    std::uint64_t timeouts = 0;

    /** Node requests that completed with an exception. */
    std::uint64_t failures = 0;

    /** Queries that lost at least one node (timeout or failure) and
     *  were answered from partial results. */
    std::uint64_t degraded_queries = 0;

    /**
     * Latency digests sourced from the process-wide obs histograms
     * (`broker.query_latency_us` and friends). Note these aggregate
     * over every broker in the process — with a single broker, which
     * is the deployment shape, they are exactly this broker's.
     */
    obs::LatencySummary query_latency;   ///< end-to-end search()
    obs::LatencySummary sample_phase;    ///< sampling broadcast + collect
    obs::LatencySummary deep_phase;      ///< deep fan-out + collect
    obs::LatencySummary merge_phase;     ///< final merge/dedupe/truncate

    /** Per-node runtime statistics. */
    std::vector<NodeStats> nodes;
};

/** Distributed hierarchical-search front end. */
class HermesBroker
{
  public:
    /**
     * @param store  Distributed store whose cluster indices the nodes
     *               serve (must outlive the broker).
     * @param config Broker parameters.
     */
    explicit HermesBroker(const core::DistributedStore &store,
                          const BrokerConfig &config = {});

    /**
     * Placement-agnostic constructor: one NodeClient per cluster, in
     * cluster-id order. This is how an out-of-process fleet is wired —
     * RemoteNodeClients pointing at hermes_shard endpoints — but any
     * mix of local and remote nodes works; scheduling, deadlines,
     * retries and degradation are identical either way.
     *
     * @param hermes_config The store configuration (sampling / deep
     *                      depths, clusters_to_search, ...). Must match
     *                      what the shards were built with for results
     *                      to mean anything.
     */
    HermesBroker(const core::HermesConfig &hermes_config,
                 std::vector<std::unique_ptr<NodeClient>> nodes,
                 const BrokerConfig &config = {});

    ~HermesBroker();

    HermesBroker(const HermesBroker &) = delete;
    HermesBroker &operator=(const HermesBroker &) = delete;

    /**
     * Execute one hierarchical search. Sampling and deep-search requests
     * run concurrently across node workers; the calling thread blocks
     * only on aggregation. Safe to call from many threads at once.
     * Never throws on node faults; see the file-level fault model.
     */
    vecstore::HitList search(vecstore::VecView query, std::size_t k) const;

    /** Like search(), but also reports which clusters were deep-searched. */
    vecstore::HitList search(vecstore::VecView query, std::size_t k,
                             std::vector<std::uint32_t>
                                 &deep_clusters) const;

    /** Snapshot of serving statistics. */
    BrokerStats stats() const;

    /**
     * Fleet-level load snapshot: per-cluster traffic/queue/energy plus
     * skew diagnostics over the deep-request distribution. @p window_s
     * bounds the windowed QPS/latency figures (clamped to the ring).
     * Safe to call concurrently with search().
     */
    LoadReport loadReport(
        std::size_t window_s = obs::kDefaultWindowSeconds) const;

    /** Number of serving nodes. */
    std::size_t numNodes() const { return nodes_.size(); }

  private:
    /** Outcome of one node request after deadline/retry handling. */
    struct NodeOutcome
    {
        bool ok = false;
        NodeResponse response;
    };

    /**
     * Wait for @p future under the configured deadline, retrying via a
     * fresh submit() to @p node up to max_retries times on timeout or
     * exception. Folds timeout/failure counts into @p timeouts /
     * @p failures.
     */
    NodeOutcome collect(std::future<NodeResponse> future,
                        NodeClient &node, vecstore::VecView query,
                        std::size_t k, const index::SearchParams &params,
                        std::uint64_t &timeouts,
                        std::uint64_t &failures) const;

    /** Shared tail of both constructors (registry counters). */
    void initCounters();

    core::HermesConfig hermes_config_;
    BrokerConfig config_;
    std::vector<std::unique_ptr<NodeClient>> nodes_;

    /** Cached refs into the process-wide metrics registry (stable).
     *  Query latency and query count carry rolling windows so the live
     *  endpoints can report last-N-seconds QPS/percentiles. */
    obs::WindowedHistogram &h_query_latency_;
    obs::Histogram &h_sample_phase_;
    obs::Histogram &h_deep_phase_;
    obs::Histogram &h_merge_phase_;
    obs::WindowedCounter &c_queries_;

    /** Per-cluster request accounting (index = cluster id). */
    struct ClusterCounters
    {
        obs::Counter &sample_requests;
        obs::Counter &deep_requests;
        obs::Counter &hits_returned;
    };
    std::vector<ClusterCounters> cluster_counters_;

    /** Construction time, for uptime/utilization in loadReport(). */
    std::chrono::steady_clock::time_point start_time_;

    mutable std::mutex stats_mutex_;
    mutable std::uint64_t queries_ = 0;
    mutable std::uint64_t deep_requests_ = 0;
    mutable std::uint64_t timeouts_ = 0;
    mutable std::uint64_t failures_ = 0;
    mutable std::uint64_t degraded_queries_ = 0;
};

} // namespace serve
} // namespace hermes
