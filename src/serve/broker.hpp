/**
 * @file
 * The Hermes scheduler/broker (paper Fig 9: "Hermes Scheduler").
 *
 * Owns one RetrievalNode per cluster and executes the hierarchical search
 * protocol across them:
 *   1. broadcast a cheap sampling request to every node (in parallel),
 *   2. rank clusters by their best sampled document,
 *   3. send deep-search requests to the top clusters (in parallel),
 *   4. merge, dedupe and truncate to the final top-k.
 *
 * Results are bit-identical to core::HermesSearch on the same store; the
 * broker adds the concurrency and queueing of a real deployment.
 */

#pragma once

#include <memory>
#include <vector>

#include "core/distributed_store.hpp"
#include "serve/node.hpp"

namespace hermes {
namespace serve {

/** Broker configuration. */
struct BrokerConfig
{
    /** Per-node queue/batching parameters. */
    NodeConfig node;
};

/** Aggregate serving statistics. */
struct BrokerStats
{
    /** Queries served end-to-end. */
    std::uint64_t queries = 0;

    /** Deep-search requests issued (queries x clusters searched). */
    std::uint64_t deep_requests = 0;

    /** Per-node runtime statistics. */
    std::vector<NodeStats> nodes;
};

/** Distributed hierarchical-search front end. */
class HermesBroker
{
  public:
    /**
     * @param store  Distributed store whose cluster indices the nodes
     *               serve (must outlive the broker).
     * @param config Broker parameters.
     */
    explicit HermesBroker(const core::DistributedStore &store,
                          const BrokerConfig &config = {});

    ~HermesBroker();

    HermesBroker(const HermesBroker &) = delete;
    HermesBroker &operator=(const HermesBroker &) = delete;

    /**
     * Execute one hierarchical search. Sampling and deep-search requests
     * run concurrently across node workers; the calling thread blocks
     * only on aggregation. Safe to call from many threads at once.
     */
    vecstore::HitList search(vecstore::VecView query, std::size_t k) const;

    /** Like search(), but also reports which clusters were deep-searched. */
    vecstore::HitList search(vecstore::VecView query, std::size_t k,
                             std::vector<std::uint32_t>
                                 &deep_clusters) const;

    /** Snapshot of serving statistics. */
    BrokerStats stats() const;

    /** Number of serving nodes. */
    std::size_t numNodes() const { return nodes_.size(); }

  private:
    const core::DistributedStore &store_;
    BrokerConfig config_;
    std::vector<std::unique_ptr<RetrievalNode>> nodes_;

    mutable std::mutex stats_mutex_;
    mutable std::uint64_t queries_ = 0;
    mutable std::uint64_t deep_requests_ = 0;
};

} // namespace serve
} // namespace hermes
