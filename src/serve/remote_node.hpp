/**
 * @file
 * The broker's client for a shard that lives in another process: a
 * NodeClient backed by a pool of framed-RPC connections to a
 * ShardServer / hermes_shard endpoint.
 *
 * submit() never blocks on the network — requests are queued and the
 * pool's I/O workers carry them, fulfilling the returned futures, so
 * the broker's scatter/gather, deadlines, retries and degradation run
 * exactly as they do against in-process nodes.
 *
 * Wire-level micro-batching: a worker that finds several queued
 * requests with identical (k, params) coalesces them into a single
 * SearchBatch RPC, which the shard fans back into its node queue
 * back-to-back — so PR 5's list-major batching engages across the
 * wire with one round trip instead of Q.
 *
 * Failure model:
 *  - Connect failure / peer reset / torn response: every request that
 *    rode that RPC gets its future failed with an exception (the
 *    broker counts a failure and retries), the connection is dropped
 *    and re-dialed on the next request — which is what makes a shard
 *    restart invisible beyond the degraded window.
 *  - A typed ErrorResponse fails only the requests of that RPC;
 *    batch-level errors are retried per-query over the wire first, so
 *    one poisoned query cannot fail its neighbours.
 *  - Responses are matched by frame id; a mismatched id (stale reply
 *    after a local timeout) poisons the connection, never a future.
 */

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/net.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/node_client.hpp"
#include "serve/rpc.hpp"

namespace hermes {
namespace serve {

/** Remote node endpoint + client tuning. */
struct RemoteNodeOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /** Pool size = max in-flight RPCs to this shard. */
    std::size_t connections = 2;

    /** Dial budget per (re)connect attempt. */
    double connect_timeout_ms = 500.0;

    /**
     * Deadline stamped on each request (the broker's node_deadline_ms;
     * the shard bounds its own wait by it). <= 0 = none.
     */
    double request_deadline_ms = 0.0;

    /** Extra wait for the response beyond request_deadline_ms. */
    double response_slack_ms = 1000.0;

    /** Response wait cap when request_deadline_ms <= 0. */
    double max_response_wait_ms = 30000.0;

    /** Client-side coalescing cap per SearchBatch RPC. */
    std::size_t max_batch = 64;
};

/** Client-side counters (observability + tests). */
struct RemoteNodeClientStats
{
    std::uint64_t rpcs_sent = 0;
    std::uint64_t batched_rpcs = 0;      ///< SearchBatch frames sent
    std::uint64_t batched_requests = 0;  ///< requests that rode them
    std::uint64_t reconnects = 0;
    std::uint64_t transport_failures = 0;
    std::uint64_t remote_errors = 0;     ///< typed ErrorResponses
};

/**
 * Clock alignment for one remote shard, measured by the Health
 * handshake: a shard-clock timestamp T (microseconds since the shard's
 * trace epoch) maps to T + offset_us on this process's trace clock.
 * The alignment error is bounded by rtt_us / 2; the stored sample is
 * the lowest-RTT handshake seen so far.
 */
struct RemoteClockSync
{
    bool valid = false;
    std::uint32_t node_id = 0;
    double offset_us = 0.0;
    double rtt_us = 0.0;
};

/** NodeClient over the framed shard protocol. */
class RemoteNodeClient final : public NodeClient
{
  public:
    explicit RemoteNodeClient(RemoteNodeOptions options);

    /** Fails all pending requests and joins the pool. */
    ~RemoteNodeClient() override;

    RemoteNodeClient(const RemoteNodeClient &) = delete;
    RemoteNodeClient &operator=(const RemoteNodeClient &) = delete;

    std::future<NodeResponse>
    submit(vecstore::VecView query, std::size_t k,
           const index::SearchParams &params) override;

    /** Stats RPC; zeros when the shard is unreachable. */
    NodeStats stats() const override;

    /** Client-side queue depth (requests not yet on the wire). */
    std::size_t queueDepth() const override;

    /** Shard size from the last successful Health/Stats RPC. */
    std::size_t shardSize() const override;

    /**
     * Health RPC on the control channel. True when the shard answers
     * with a compatible protocol version ([kMinProtocolVersion,
     * kProtocolVersion]); fills @p out when given. Also refreshes the
     * cached shard size, the negotiated peer version (which gates
     * trace-context injection) and the clock-sync estimate.
     */
    bool health(rpc::HealthResponse *out = nullptr) const;

    /**
     * Last negotiated peer protocol version; 0 until a Health
     * handshake succeeds. Trace context goes on the wire only when
     * this is >= 2, so a v1 shard never sees v2 trailing bytes.
     */
    std::uint32_t peerVersion() const
    {
        return peer_version_.load(std::memory_order_relaxed);
    }

    /** Best (lowest-RTT) clock alignment measured so far. */
    RemoteClockSync clockSync() const;

    RemoteNodeClientStats clientStats() const;

    const RemoteNodeOptions &options() const { return options_; }

  private:
    struct Pending
    {
        std::vector<float> query;
        std::size_t k = 0;
        index::SearchParams params;
        std::promise<NodeResponse> promise;

        /** Submitter's trace context, re-opened on the I/O worker so
         *  the rpc.* span (and the wire-injected context) chain under
         *  the broker-side phase span. */
        obs::TraceContextSnapshot trace;
    };

    void workerLoop();

    /** True when two requests can share one SearchBatch RPC. */
    static bool compatible(const Pending &a, const Pending &b);

    /**
     * Run one RPC for @p group on @p socket ((re)dialing as needed).
     * Fulfils every promise in the group, one way or the other.
     */
    void runRpc(net::Socket &socket, std::vector<Pending> &group);

    /** Per-query wire retry after a batch-level ErrorResponse. */
    void retrySingles(net::Socket &socket, std::vector<Pending> &group);

    bool ensureConnected(net::Socket &socket);

    /**
     * Send @p payload as @p type and wait for the matching response
     * frame. Returns false on transport failure (socket poisoned and
     * closed); true with @p reply filled otherwise.
     */
    bool roundTrip(net::Socket &socket, rpc::Type type,
                   std::string_view payload, net::Frame &reply);

    /** Control-channel round trip (stats/health), serialized. */
    bool controlRoundTrip(rpc::Type type, std::string_view payload,
                          net::Frame &reply) const;

    static void failGroup(std::vector<Pending> &group,
                          const std::string &reason);

    /** Count a typed ErrorResponse in rpc.remote_errors + its
     *  per-code rpc.error.<code> series. */
    void countRemoteError(rpc::ErrorCode code) const;

    RemoteNodeOptions options_;

    /** "host:port", resolved once for span args and error strings. */
    std::string endpoint_;

    /** Canonical rpc.* metric family (obs/metric_names.hpp), resolved
     *  once — roundTrip() is on the per-RPC hot path. */
    obs::Counter *m_rpcs_;
    obs::Counter *m_request_bytes_;
    obs::Counter *m_response_bytes_;
    obs::Counter *m_redials_;
    obs::Counter *m_transport_failures_;
    obs::Counter *m_remote_errors_;
    obs::Histogram *m_round_trip_us_;
    obs::Histogram *m_batch_size_;

    /** Negotiated peer protocol version (0 = no handshake yet).
     *  ensureConnected re-runs the Health handshake after every
     *  successful dial so plain submit() traffic negotiates this and
     *  a restarted peer's clock epoch gets re-measured. */
    mutable std::atomic<std::uint32_t> peer_version_{0};

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<Pending> queue_;
    bool stopping_ = false;

    std::vector<std::thread> workers_;

    /** Dedicated connection for stats/health so control traffic never
     *  queues behind a large search batch. */
    mutable std::mutex control_mutex_;
    mutable net::Socket control_socket_;

    mutable std::atomic<std::uint64_t> next_id_{1};
    mutable std::atomic<std::size_t> shard_vectors_{0};

    mutable std::mutex stats_mutex_;
    mutable RemoteNodeClientStats client_stats_;
    mutable RemoteClockSync clock_sync_;
};

/** Parse "host:port" (or bare ":port"/"port" for loopback). */
bool parseEndpoint(const std::string &spec, std::string &host,
                   std::uint16_t &port);

} // namespace serve
} // namespace hermes
