/**
 * @file
 * The replica map: which serving nodes hold a copy of which cluster.
 *
 * The paper's §6 load analysis (Fig 13/18) shows Zipfian traffic
 * concentrating deep-search load on a few hot clusters; the broker's
 * loadReport() reproduces that skew live. A ReplicaMap is the mitigation
 * side: it records, per cluster, the ordered list of node slots that
 * serve a bit-identical copy of that cluster's index, so the broker can
 * spread a hot cluster's probes over R nodes (power-of-two-choices on
 * live queue depth) and hedge stragglers to a second replica.
 *
 * Replicas are bit-identical by construction — in-process replicas share
 * the same immutable IvfIndex, and hermes_shard replicas rebuild the
 * same cluster from the same deterministic seed flags — so routing and
 * hedging are pure scheduling choices: any replica answers any probe
 * with exactly the same hits.
 *
 * The map is produced three ways:
 *   - identity(n): cluster c on node c, the unreplicated default;
 *   - parseSpec("c:r,..."): static --replicate flags;
 *   - planFromLoad(report, policy): dynamic replication driven by the
 *     live Zipf fit and per-cluster deep-request counts.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hermes {
namespace serve {

struct LoadReport;

/** Knobs for dynamic (load-driven) replication decisions. */
struct ReplicationPolicy
{
    /** Budget of extra replicas a single plan may add. */
    std::size_t max_total_extras = 2;

    /** Cap on replicas per cluster (existing + planned). */
    std::size_t max_replicas_per_cluster = 2;

    /**
     * A cluster is hot when its deep-request share exceeds this multiple
     * of the mean share (1.0 replicates anything above average).
     */
    double hot_share_ratio = 1.5;

    /** Ignore reports with fewer total deep requests than this (noise). */
    std::uint64_t min_deep_requests = 64;

    /**
     * Only replicate when the fitted Zipf exponent shows real skew; a
     * flat fleet (exponent ~0) gains nothing from extra copies.
     */
    double min_zipf_exponent = 0.2;
};

/** One planned replication step: give @p cluster @p extras more copies. */
struct ReplicaPlanEntry
{
    std::uint32_t cluster = 0;
    std::uint32_t extras = 0;
};

/** Cluster -> ordered node slots serving a copy of that cluster. */
class ReplicaMap
{
  public:
    ReplicaMap() = default;

    /** The unreplicated default: cluster c served by node c alone. */
    static ReplicaMap identity(std::size_t num_clusters);

    /** True when no cluster has been assigned any node. */
    bool empty() const { return replicas_.empty(); }

    /** Number of clusters in the map. */
    std::size_t numClusters() const { return replicas_.size(); }

    /** One past the highest node index referenced by any cluster. */
    std::size_t numNodes() const { return num_nodes_; }

    /** Node slots serving @p cluster (primary first). */
    const std::vector<std::uint32_t> &replicas(std::size_t cluster) const;

    /** Replica count of @p cluster (0 when unknown). */
    std::size_t
    replicaCount(std::size_t cluster) const
    {
        return cluster < replicas_.size() ? replicas_[cluster].size() : 0;
    }

    /**
     * Append @p node to @p cluster's replica list, growing the cluster
     * dimension as needed. The same node must not be assigned twice
     * (replicas are distinct serving queues); violations are fatal.
     */
    void assign(std::size_t cluster, std::uint32_t node);

    /**
     * True when every cluster has at least one replica and the node
     * indices are a permutation of [0, numNodes()) — i.e. the map can
     * drive a broker whose node list has numNodes() entries.
     */
    bool complete() const;

    /**
     * Parse a static replication spec "cluster:replicas[,...]", e.g.
     * "0:2,3:3" (cluster 0 on two nodes, cluster 3 on three). Replica
     * counts of 0 or 1 are legal no-ops. Returns false on malformed
     * input; @p out holds (cluster, total replicas) pairs.
     */
    static bool
    parseSpec(const std::string &spec,
              std::vector<std::pair<std::uint32_t, std::uint32_t>> &out);

    /**
     * Decide which clusters deserve extra replicas from a live load
     * report: clusters whose deep-request share exceeds
     * policy.hot_share_ratio x mean, hottest first, bounded by the
     * policy budget and per-cluster cap, gated on the fitted Zipf
     * exponent showing real skew. Returns an empty plan when the fleet
     * is flat or the report is too small to trust.
     */
    static std::vector<ReplicaPlanEntry>
    planFromLoad(const LoadReport &report, const ReplicationPolicy &policy);

  private:
    std::vector<std::vector<std::uint32_t>> replicas_;
    std::size_t num_nodes_ = 0;
};

} // namespace serve
} // namespace hermes
