#include "serve/node.hpp"

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace hermes {
namespace serve {

RetrievalNode::RetrievalNode(const index::AnnIndex &shard,
                             const NodeConfig &config)
    : shard_(shard), config_(config)
{
    HERMES_ASSERT(config_.max_batch >= 1, "node needs max_batch >= 1");
    HERMES_ASSERT(shard_.isTrained(), "node shard must be trained");
    worker_ = std::thread([this] { workerLoop(); });
}

RetrievalNode::~RetrievalNode()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    worker_.join();
}

std::future<NodeResponse>
RetrievalNode::submit(vecstore::VecView query, std::size_t k,
                      const index::SearchParams &params)
{
    HERMES_ASSERT(query.size() == shard_.dim(),
                  "node: query dim mismatch");
    Request request;
    request.query.assign(query.begin(), query.end());
    request.k = k;
    request.params = params;
    auto future = request.promise.get_future();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        HERMES_ASSERT(!stopping_, "submit to a stopping node");
        queue_.push_back(std::move(request));
    }
    cv_.notify_one();
    return future;
}

void
RetrievalNode::workerLoop()
{
    for (;;) {
        std::vector<Request> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty() && stopping_)
                return;
            while (!queue_.empty() && batch.size() < config_.max_batch) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }

        util::Timer timer;
        std::uint64_t scanned = 0;
        std::vector<NodeResponse> responses(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            auto &request = batch[i];
            responses[i].hits = shard_.search(
                vecstore::VecView(request.query.data(),
                                  request.query.size()),
                request.k, request.params, &responses[i].stats);
            scanned += responses[i].stats.vectors_scanned;
        }
        double elapsed = timer.elapsedSeconds();

        // Record statistics before fulfilling promises so a caller that
        // observes its response also observes the stats that produced it.
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stats_.requests += batch.size();
            stats_.batches += 1;
            stats_.busy_seconds += elapsed;
            stats_.vectors_scanned += scanned;
        }
        for (std::size_t i = 0; i < batch.size(); ++i)
            batch[i].promise.set_value(std::move(responses[i]));
    }
}

NodeStats
RetrievalNode::stats() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace serve
} // namespace hermes
