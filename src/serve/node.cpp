#include "serve/node.hpp"

#include <chrono>
#include <optional>
#include <stdexcept>

#include "obs/obs.hpp"
#include "obs/perf.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace hermes {
namespace serve {

RetrievalNode::RetrievalNode(const index::AnnIndex &shard,
                             const NodeConfig &config)
    : shard_(shard), config_(config), fault_rng_(config.faults.seed)
{
    HERMES_ASSERT(config_.max_batch >= 1, "node needs max_batch >= 1");
    HERMES_ASSERT(shard_.isTrained(), "node shard must be trained");
    worker_ = std::thread([this] { workerLoop(); });
}

RetrievalNode::~RetrievalNode()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    worker_.join();
    // Parked promises of dropped requests die here; any caller still
    // holding such a future sees a broken_promise error, not a hang.
}

std::future<NodeResponse>
RetrievalNode::submit(vecstore::VecView query, std::size_t k,
                      const index::SearchParams &params)
{
    HERMES_ASSERT(query.size() == shard_.dim(),
                  "node: query dim mismatch");
    Request request;
    request.query.assign(query.begin(), query.end());
    request.k = k;
    request.params = params;
    request.enqueued = std::chrono::steady_clock::now();
    request.trace = obs::currentTraceContext();
    auto future = request.promise.get_future();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        HERMES_ASSERT(!stopping_, "submit to a stopping node");
        queue_.push_back(std::move(request));
    }
    cv_.notify_one();
    return future;
}

void
RetrievalNode::workerLoop()
{
    const FaultInjector &faults = config_.faults;
    auto &registry = obs::Registry::instance();
    obs::Histogram &queue_wait =
        registry.histogram(obs::names::kNodeQueueWaitUs);
    obs::Histogram &batch_exec =
        registry.histogram(obs::names::kNodeBatchExecUs);
    obs::Gauge &queue_depth_gauge = registry.gauge(obs::names::nodeMetric(
        config_.node_id, obs::names::kNodeQueueDepth));
    obs::Gauge &energy_gauge = registry.gauge(obs::names::nodeMetric(
        config_.node_id, obs::names::kNodeEnergyJoules));
    obs::Histogram &occupancy = registry.histogram(obs::names::nodeMetric(
        config_.node_id, obs::names::kNodeBatchOccupancy));

    // Per-core dynamic power of the modeled CPU: what one busy worker
    // core adds on top of the package idle floor. Idle/static energy is
    // attributed from wall time at LoadReport level, not here.
    const sim::CpuProfile &cpu = sim::cpuProfile(config_.cpu_model);
    const double dynamic_watts_per_core = config_.model_energy
        ? (cpu.tdp_watts - cpu.idle_watts) /
            static_cast<double>(cpu.cores)
        : 0.0;

    for (;;) {
        std::vector<Request> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty() && stopping_)
                return;
            if (config_.batch_window_us > 0.0 && !stopping_ &&
                queue_.size() < config_.max_batch) {
                // Micro-batching: hold the drain open until max_batch
                // requests are waiting or the oldest one has aged past
                // the window, bounding its added latency to the window.
                auto deadline =
                    queue_.front().enqueued +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::micro>(
                            config_.batch_window_us));
                cv_.wait_until(lock, deadline, [this] {
                    return stopping_ ||
                           queue_.size() >= config_.max_batch;
                });
            }
            while (!queue_.empty() && batch.size() < config_.max_batch) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            queue_depth_gauge.set(static_cast<double>(queue_.size()));
        }
        occupancy.observe(static_cast<double>(batch.size()));
        HERMES_DEBUG("node ", config_.node_id, ": drained batch of ",
                     batch.size());

        // Queue wait per request: submit() to drain, the "time in line"
        // half of node latency (batch execution below is the other half).
        auto drained = std::chrono::steady_clock::now();
        for (const auto &request : batch) {
            queue_wait.observe(
                std::chrono::duration<double, std::micro>(
                    drained - request.enqueued).count());
            obs::TraceRecorder::instance().addSpan(
                "node.queue_wait", request.enqueued, drained,
                {{"cluster", std::to_string(config_.node_id), true}},
                request.trace);
        }

        // Per-request outcome, computed before any promise is fulfilled.
        enum class Outcome { Ok, Failed, Dropped };
        util::Timer timer;
        std::uint64_t scanned = 0;
        std::uint64_t hits = 0;
        std::uint64_t failures = 0;
        std::uint64_t dropped = 0;
        std::vector<NodeResponse> responses(batch.size());
        std::vector<std::exception_ptr> errors(batch.size());
        std::vector<Outcome> outcomes(batch.size(), Outcome::Ok);

        // Fault pre-pass in drain order: the injected-fault stream must
        // be consumed one roll per request in arrival order, so the same
        // seed produces the same fail/drop/delay decisions regardless of
        // how the surviving requests are grouped for execution below.
        if (faults.enabled()) {
            for (std::size_t i = 0; i < batch.size(); ++i) {
                double roll = fault_rng_.uniform();
                if (roll < faults.fail_probability) {
                    outcomes[i] = Outcome::Failed;
                    errors[i] = std::make_exception_ptr(std::runtime_error(
                        "injected node fault"));
                    ++failures;
                    continue;
                }
                if (roll < faults.fail_probability +
                               faults.drop_probability) {
                    outcomes[i] = Outcome::Dropped;
                    ++dropped;
                    continue;
                }
                if (roll < faults.fail_probability +
                               faults.drop_probability +
                               faults.delay_probability &&
                    faults.delay_ms > 0.0) {
                    std::this_thread::sleep_for(
                        std::chrono::duration<double, std::milli>(
                            faults.delay_ms));
                }
            }
        }

        // Single-request execution (also the fallback if a batched group
        // throws): identical spans and error handling to the pre-batched
        // serving path.
        auto runSingle = [&](std::size_t i) {
            auto &request = batch[i];
            obs::TraceContext trace_context(request.trace);
            obs::ScopedSpan span("node.search");
            span.arg("cluster",
                     static_cast<std::uint64_t>(config_.node_id));
            span.arg("k", static_cast<std::uint64_t>(request.k));
            try {
                responses[i].hits = shard_.search(
                    vecstore::VecView(request.query.data(),
                                      request.query.size()),
                    request.k, request.params, &responses[i].stats);
                scanned += responses[i].stats.vectors_scanned;
                hits += responses[i].hits.size();
                span.arg("vectors_scanned",
                         responses[i].stats.vectors_scanned);
            } catch (...) {
                // A failing shard must never leave a broken future or
                // kill the worker: hand the exception to the caller.
                outcomes[i] = Outcome::Failed;
                errors[i] = std::current_exception();
                ++failures;
            }
        };

        // Group surviving requests by search parameters: requests that
        // share (k, nprobe, ef_search, prune_ratio) can ride one
        // list-major searchBatch call. First-occurrence order keeps the
        // schedule deterministic.
        struct Group
        {
            std::size_t k;
            index::SearchParams params;
            std::vector<std::size_t> members;
        };
        std::vector<Group> groups;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (outcomes[i] != Outcome::Ok)
                continue;
            const auto &request = batch[i];
            Group *group = nullptr;
            for (auto &g : groups) {
                if (g.k == request.k &&
                    g.params.nprobe == request.params.nprobe &&
                    g.params.ef_search == request.params.ef_search &&
                    g.params.prune_ratio == request.params.prune_ratio &&
                    g.params.batch_min_scan_floats ==
                        request.params.batch_min_scan_floats) {
                    group = &g;
                    break;
                }
            }
            if (group == nullptr) {
                groups.push_back({request.k, request.params, {}});
                group = &groups.back();
            }
            group->members.push_back(i);
        }

        // Hardware-counter attribution for the shard scan phase — the
        // whole execution sweep over this batch (no-op unless --perf).
        std::optional<obs::PerfScope> scan_perf;
        scan_perf.emplace(obs::PerfPhase::Scan);
        for (const auto &group : groups) {
            if (group.members.size() == 1) {
                runSingle(group.members[0]);
                continue;
            }
            obs::TraceContextSnapshot group_ctx; // first traced member
            for (std::size_t i : group.members) {
                if (batch[i].trace.active) {
                    group_ctx = batch[i].trace;
                    break;
                }
            }
            vecstore::Matrix group_queries(shard_.dim());
            group_queries.reserveRows(group.members.size());
            for (std::size_t i : group.members) {
                group_queries.append(vecstore::VecView(
                    batch[i].query.data(), batch[i].query.size()));
            }
            std::vector<index::SearchStats> per_stats;
            std::vector<vecstore::HitList> group_hits;
            bool batched_ok = true;
            auto exec_start = std::chrono::steady_clock::now();
            {
                // One batch-level span; per-request node.search child
                // spans are back-filled below so traces keep one
                // node.search per request either way.
                obs::TraceContext trace_context(group_ctx);
                obs::ScopedSpan span("node.search_batch");
                span.arg("cluster",
                         static_cast<std::uint64_t>(config_.node_id));
                span.arg("requests",
                         static_cast<std::uint64_t>(group.members.size()));
                try {
                    group_hits = shard_.searchBatch(group_queries, group.k,
                                                    group.params,
                                                    &per_stats);
                } catch (...) {
                    batched_ok = false;
                }
            }
            if (!batched_ok) {
                // The batch faulted as a unit; retry requests one at a
                // time so a single poisoned query only fails itself.
                for (std::size_t i : group.members)
                    runSingle(i);
                continue;
            }
            auto exec_end = std::chrono::steady_clock::now();
            for (std::size_t m = 0; m < group.members.size(); ++m) {
                const std::size_t i = group.members[m];
                responses[i].hits = std::move(group_hits[m]);
                responses[i].stats = per_stats[m];
                scanned += responses[i].stats.vectors_scanned;
                hits += responses[i].hits.size();
                obs::TraceRecorder::instance().addSpan(
                    "node.search", exec_start, exec_end,
                    {{"cluster", std::to_string(config_.node_id), true},
                     {"k", std::to_string(batch[i].k), true},
                     {"vectors_scanned",
                      std::to_string(responses[i].stats.vectors_scanned),
                      true}},
                    batch[i].trace);
            }
        }
        scan_perf.reset();
        double elapsed = timer.elapsedSeconds();
        batch_exec.observe(elapsed * 1e6);
        double joules = elapsed * dynamic_watts_per_core;
        if (joules > 0.0)
            energy_gauge.add(joules);

        // Record statistics before fulfilling promises so a caller that
        // observes its response also observes the stats that produced it.
        {
            std::unique_lock<std::mutex> lock(mutex_);
            stats_.requests += batch.size();
            stats_.batches += 1;
            stats_.busy_seconds += elapsed;
            stats_.vectors_scanned += scanned;
            stats_.failures += failures;
            stats_.dropped += dropped;
            stats_.hits_returned += hits;
            stats_.energy_joules += joules;
        }
        for (std::size_t i = 0; i < batch.size(); ++i) {
            switch (outcomes[i]) {
              case Outcome::Ok:
                batch[i].promise.set_value(std::move(responses[i]));
                break;
              case Outcome::Failed:
                batch[i].promise.set_exception(errors[i]);
                break;
              case Outcome::Dropped:
                dropped_.push_back(std::move(batch[i].promise));
                break;
            }
        }
    }
}

NodeStats
RetrievalNode::stats() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
RetrievalNode::queueDepth() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return queue_.size();
}

} // namespace serve
} // namespace hermes
