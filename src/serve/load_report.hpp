/**
 * @file
 * Fleet-level load report: per-cluster traffic, queue and energy
 * accounting for a running broker, plus skew diagnostics.
 *
 * This is the live counterpart of the paper's offline fleet analysis:
 * per-cluster access counts under Zipfian traffic (Fig 13) and modeled
 * energy per node (Fig 18), computed from the serving path's own
 * counters instead of a simulation. The broker materializes one on
 * demand (HermesBroker::loadReport()); the HTTP exporter serves it at
 * GET /load; hermes_monitor renders it live. Any future load-aware
 * placement/replication policy reads this structure.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/imbalance.hpp"

namespace hermes {
namespace serve {

/** Load attributed to one cluster node. */
struct ClusterLoad
{
    /** Cluster / node id. */
    std::uint32_t cluster = 0;

    /** Vectors stored on this node's shard. */
    std::size_t shard_vectors = 0;

    /** Sampling requests routed here (uniform: one per query). */
    std::uint64_t sample_requests = 0;

    /** Deep-search requests routed here — the skewed load signal. */
    std::uint64_t deep_requests = 0;

    /** Hits this node returned across all completed requests. */
    std::uint64_t hits_returned = 0;

    /** Requests completed by the node worker (sample + deep). */
    std::uint64_t requests = 0;

    /** Processing rounds the worker executed. */
    std::uint64_t batches = 0;

    /** Mean requests per processing round (requests / batches); > 1
     *  means the worker is coalescing concurrent requests into shared
     *  list-major scans (see NodeConfig::batch_window_us). */
    double batch_occupancy = 0.0;

    /** Requests waiting in the node queue right now. */
    std::size_t queue_depth = 0;

    /** Seconds the worker spent executing batches. */
    double busy_seconds = 0.0;

    /** busy_seconds / broker uptime. */
    double utilization = 0.0;

    /**
     * Modeled energy in joules: the worker's accrued dynamic energy
     * plus this node's static (idle) share of the uptime, i.e. the
     * paper's per-node energy accounting applied to live traffic.
     */
    double energy_joules = 0.0;

    /** Nodes serving a copy of this cluster (1 = unreplicated). */
    std::uint32_t replicas = 1;

    /** Requests routed to each replica slot (primary first); the
     *  spread shows power-of-two-choices balancing the copies. */
    std::vector<std::uint64_t> replica_routes;
};

/** Point-in-time fleet load snapshot. */
struct LoadReport
{
    /** Seconds since the broker was constructed. */
    double uptime_seconds = 0.0;

    /** Cumulative query/fault counters (monotone across polls). */
    std::uint64_t queries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;
    std::uint64_t degraded_queries = 0;

    /** Hedged sample probes: duplicates issued past the windowed p95,
     *  how many the duplicate won the race, and how many the primary
     *  still won (the duplicate's work was wasted and discarded). */
    std::uint64_t hedges_issued = 0;
    std::uint64_t hedges_won = 0;
    std::uint64_t hedges_wasted = 0;

    /** Look-back horizon of the windowed figures below. */
    double window_seconds = 0.0;

    /** Queries per second over the window. */
    double window_qps = 0.0;

    /** End-to-end latency percentiles over the window (us). */
    double window_p50_us = 0.0;
    double window_p99_us = 0.0;

    /** Since-boot latency percentiles (us), for contrast. */
    double cumulative_p50_us = 0.0;
    double cumulative_p99_us = 0.0;

    /** Per-cluster accounting, in cluster-id order. */
    std::vector<ClusterLoad> clusters;

    /**
     * Imbalance statistics over per-cluster deep-request counts (the
     * same metrics cluster/imbalance computes over cluster sizes at
     * build time — here applied to live access counts, Fig 13).
     */
    cluster::ImbalanceStats deep_imbalance;

    /** Max per-cluster deep load over the mean (1.0 = flat; always
     *  finite, unlike max/min with cold clusters). */
    double max_mean_ratio = 0.0;

    /** Zipf exponent fitted to the ranked deep-request counts
     *  (0 = flat; ~1 reproduces a topic_zipf=1 workload). */
    double zipf_exponent = 0.0;

    /** Sum of per-cluster modeled energy. */
    double total_energy_joules = 0.0;

    /**
     * Measured energy beside the model (obs/perf.hpp RAPL sampler):
     * wraparound-corrected whole-package joules since the sampler
     * started. Valid only when --perf is on and powercap is readable;
     * otherwise false and every measured field stays 0 — the modeled
     * path above is untouched either way.
     */
    bool measured_energy_valid = false;
    double measured_package_joules = 0.0;
    double measured_dram_joules = 0.0;

    /** measured_package_joules / total_energy_joules when both are
     *  positive (the live Fig 18 falsifiability check), else 0. */
    double energy_model_error_ratio = 0.0;

    /** Serialize for the /load endpoint (stable field names). */
    std::string toJson() const;
};

/**
 * Least-squares fit of s in count(rank) ~ rank^-s over the non-zero
 * @p counts (sorted descending internally; rank is 1-based). Returns 0
 * when fewer than two non-zero counts exist.
 */
double fitZipfExponent(std::vector<double> counts);

} // namespace serve
} // namespace hermes
