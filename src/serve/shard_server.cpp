#include "serve/shard_server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace hermes {
namespace serve {

namespace {

/**
 * Gate a propagated context on this process's recorder: adopting a
 * remote context only records spans when the shard itself has tracing
 * enabled (hermes_shard --trace-out / HERMES_TRACE_OUT).
 */
obs::TraceContextSnapshot
gateRemoteContext(obs::TraceContextSnapshot ctx)
{
    ctx.active =
        ctx.active && obs::TraceRecorder::instance().enabled();
    return ctx;
}

/** Accept-poll tick: how often the accept loop re-checks stopping_. */
constexpr double kAcceptTickMs = 100.0;

/** Idle-poll tick for connection readers and node-future waits. */
constexpr int kIdleTickMs = 100;

/** I/O budget for one frame once bytes have started flowing. */
constexpr double kFrameIoMs = 5000.0;

} // namespace

ShardServer::ShardServer(const index::AnnIndex &shard,
                         ShardServerOptions options)
    : shard_(shard), options_(std::move(options))
{
}

ShardServer::~ShardServer()
{
    stop();
}

bool
ShardServer::start()
{
    if (running_.load())
        return true;
    std::string error;
    if (!listener_.open(options_.bind_address, options_.port, 64, &error)) {
        std::fprintf(stderr, "[warn] shard: %s\n", error.c_str());
        return false;
    }
    node_ = std::make_unique<RetrievalNode>(shard_, options_.node);
    stopping_.store(false);
    running_.store(true);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
ShardServer::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);
    if (accept_thread_.joinable())
        accept_thread_.join();
    listener_.close();
    std::vector<ConnectionThread> threads;
    {
        std::unique_lock<std::mutex> lock(threads_mutex_);
        threads.swap(connection_threads_);
    }
    for (auto &entry : threads) {
        if (entry.thread.joinable())
            entry.thread.join();
    }
    node_.reset();
}

ShardServerStats
ShardServer::stats() const
{
    std::unique_lock<std::mutex> lock(stats_mutex_);
    return stats_;
}

NodeStats
ShardServer::nodeStats() const
{
    return node_ ? node_->stats() : NodeStats{};
}

void
ShardServer::acceptLoop()
{
    while (!stopping_.load()) {
        reapFinishedConnections();
        net::Socket socket = listener_.acceptFor(kAcceptTickMs);
        if (!socket.valid())
            continue;
        {
            std::unique_lock<std::mutex> lock(stats_mutex_);
            ++stats_.connections_accepted;
        }
        ConnectionThread entry;
        entry.done = std::make_shared<std::atomic<bool>>(false);
        entry.thread = std::thread(
            [this, sock = std::move(socket), done = entry.done]() mutable {
                // Catch-all backstop: an exception escaping a handler
                // thread is std::terminate for the whole shard process.
                // dispatch() already answers decode/search failures
                // in-protocol; anything that still escapes (bad_alloc
                // while encoding a reply, a non-wire decode throw) must
                // only cost this connection.
                try {
                    handleConnection(std::move(sock));
                } catch (const std::exception &e) {
                    std::fprintf(stderr,
                                 "[warn] shard: connection dropped: %s\n",
                                 e.what());
                } catch (...) {
                    std::fprintf(stderr, "[warn] shard: connection "
                                         "dropped: unknown exception\n");
                }
                done->store(true);
            });
        std::unique_lock<std::mutex> lock(threads_mutex_);
        connection_threads_.push_back(std::move(entry));
    }
}

void
ShardServer::reapFinishedConnections()
{
    std::vector<ConnectionThread> finished;
    {
        std::unique_lock<std::mutex> lock(threads_mutex_);
        auto it = connection_threads_.begin();
        while (it != connection_threads_.end()) {
            if (it->done->load()) {
                finished.push_back(std::move(*it));
                it = connection_threads_.erase(it);
            } else {
                ++it;
            }
        }
    }
    // Join outside the lock; these threads have already returned, so
    // each join is immediate.
    for (auto &entry : finished) {
        if (entry.thread.joinable())
            entry.thread.join();
    }
    if (!finished.empty()) {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        stats_.connections_reaped += finished.size();
    }
}

void
ShardServer::handleConnection(net::Socket socket)
{
    while (!stopping_.load()) {
        // Idle wait in slices so stop() is never blocked on a silent
        // client; once bytes arrive the frame gets a real I/O budget.
        net::IoStatus readable = net::waitReadable(
            socket.fd(), net::Deadline::infinite(), kIdleTickMs);
        if (readable == net::IoStatus::Timeout)
            continue;
        if (readable != net::IoStatus::Ok)
            return;
        net::Frame frame;
        net::IoStatus status =
            net::recvFrame(socket, frame, net::Deadline::after(kFrameIoMs),
                           options_.max_frame_payload);
        if (status != net::IoStatus::Ok)
            return; // closed, torn frame, bad magic or oversized: drop
        if (!dispatch(socket, frame))
            return;
    }
}

bool
ShardServer::sendReply(net::Socket &socket, rpc::Type type,
                       std::uint64_t id, std::string_view payload)
{
    return net::sendFrame(socket, static_cast<std::uint32_t>(type), id,
                          payload, net::Deadline::after(kFrameIoMs)) ==
        net::IoStatus::Ok;
}

bool
ShardServer::sendError(net::Socket &socket, std::uint64_t id,
                       rpc::ErrorCode code, const std::string &message)
{
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++stats_.errors_returned;
    }
    return sendReply(socket, rpc::Type::ErrorResponse, id,
                     rpc::encodeError(code, message));
}

bool
ShardServer::waitForNode(std::future<NodeResponse> &future,
                         double deadline_ms, NodeResponse &response,
                         rpc::ErrorCode &code, std::string &message)
{
    // Budget: the client's own deadline plus slack, capped so a
    // deadline-less request against a fault-dropped promise still
    // unblocks this thread eventually.
    double budget = deadline_ms > 0.0
        ? deadline_ms + options_.deadline_slack_ms
        : options_.max_wait_ms;
    net::Deadline deadline = net::Deadline::after(budget);
    for (;;) {
        if (stopping_.load()) {
            code = rpc::ErrorCode::Shutdown;
            message = "shard stopping";
            return false;
        }
        double slice =
            std::min(deadline.remainingMs(), double(kIdleTickMs));
        auto status = future.wait_for(
            std::chrono::duration<double, std::milli>(slice));
        if (status == std::future_status::ready)
            break;
        if (deadline.expired()) {
            code = rpc::ErrorCode::Timeout;
            message = "node wait exceeded " + std::to_string(budget) +
                " ms";
            return false;
        }
    }
    try {
        response = future.get();
        return true;
    } catch (const std::exception &e) {
        code = rpc::ErrorCode::Internal;
        message = e.what();
    } catch (...) {
        code = rpc::ErrorCode::Internal;
        message = "non-standard shard exception";
    }
    return false;
}

bool
ShardServer::dispatch(net::Socket &socket, const net::Frame &frame)
{
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++stats_.requests_served;
    }
    switch (static_cast<rpc::Type>(frame.type)) {
      case rpc::Type::HealthRequest: {
        std::uint32_t client_version = 1;
        try {
            client_version = rpc::decodeHealthRequest(frame.payload);
        } catch (const std::exception &e) {
            return sendError(socket, frame.id, rpc::ErrorCode::BadRequest,
                             e.what());
        }
        rpc::HealthResponse health;
        // Negotiate down to the client: a v1 client sees an exact v1
        // reply (version 1, no trailing clock field).
        health.protocol_version =
            std::min(client_version, rpc::kProtocolVersion);
        health.node_id = static_cast<std::uint32_t>(options_.node.node_id);
        health.dim = static_cast<std::uint32_t>(shard_.dim());
        health.shard_vectors = shard_.size();
        if (health.protocol_version >= 2) {
            health.has_clock = true;
            health.trace_now_us = obs::TraceRecorder::instance().toMicros(
                obs::TraceRecorder::Clock::now());
        }
        return sendReply(socket, rpc::Type::HealthResponse, frame.id,
                         rpc::encodeHealthResponse(health));
      }
      case rpc::Type::StatsRequest: {
        rpc::StatsResponse stats;
        stats.stats = node_->stats();
        stats.queue_depth = node_->queueDepth();
        stats.shard_vectors = shard_.size();
        return sendReply(socket, rpc::Type::StatsResponse, frame.id,
                         rpc::encodeStatsResponse(stats));
      }
      case rpc::Type::SearchRequest: {
        rpc::SearchRequest request;
        try {
            request = rpc::decodeSearchRequest(frame.payload);
        } catch (const std::exception &e) {
            // std::exception, not just WireError: a hostile length
            // prefix that slips past validation must surface as a
            // BadRequest reply, never escape the connection thread.
            return sendError(socket, frame.id, rpc::ErrorCode::BadRequest,
                             e.what());
        }
        if (request.query.size() != shard_.dim()) {
            return sendError(socket, frame.id, rpc::ErrorCode::BadRequest,
                             "query dim " +
                                 std::to_string(request.query.size()) +
                                 " != shard dim " +
                                 std::to_string(shard_.dim()));
        }
        // Adopt the propagated trace context for the whole shard-side
        // handling, so node queue-wait/exec spans (and their ivf
        // children) chain under the broker-side rpc.search span.
        obs::TraceContext adopt(gateRemoteContext(request.trace));
        std::optional<obs::ScopedSpan> span;
        if (obs::traceActive()) {
            span.emplace("shard.search");
            span->arg("cluster",
                      static_cast<std::uint64_t>(options_.node.node_id));
        }
        auto future = node_->submit(
            vecstore::VecView(request.query.data(), request.query.size()),
            request.k, request.params);
        NodeResponse response;
        rpc::ErrorCode code;
        std::string message;
        if (!waitForNode(future, request.deadline_ms, response, code,
                         message))
            return sendError(socket, frame.id, code, message);
        return sendReply(socket, rpc::Type::SearchResponse, frame.id,
                         rpc::encodeSearchResponse(response));
      }
      case rpc::Type::SearchBatchRequest: {
        rpc::SearchBatchRequest request;
        try {
            request = rpc::decodeSearchBatchRequest(frame.payload);
        } catch (const std::exception &e) {
            return sendError(socket, frame.id, rpc::ErrorCode::BadRequest,
                             e.what());
        }
        if (request.dim != shard_.dim()) {
            return sendError(socket, frame.id, rpc::ErrorCode::BadRequest,
                             "batch dim " + std::to_string(request.dim) +
                                 " != shard dim " +
                                 std::to_string(shard_.dim()));
        }
        // Back-to-back node submissions: the queue drain groups them
        // into one list-major searchBatch (same k/params), so one
        // batch RPC rides the same micro-batching as concurrent
        // in-process callers.
        const std::size_t q = request.numQueries();
        auto batch_start = obs::TraceRecorder::Clock::now();
        obs::TraceContextSnapshot batch_ctx; // first traced member
        std::vector<std::future<NodeResponse>> futures;
        futures.reserve(q);
        for (std::size_t i = 0; i < q; ++i) {
            // Per-query adoption: each member keeps its own trace
            // identity (a coalesced RPC can carry several traces).
            obs::TraceContextSnapshot ctx = i < request.traces.size()
                ? gateRemoteContext(request.traces[i])
                : obs::TraceContextSnapshot{};
            if (ctx.active && !batch_ctx.active)
                batch_ctx = ctx;
            obs::TraceContext adopt(ctx);
            futures.push_back(node_->submit(
                vecstore::VecView(request.queries.data() + i * request.dim,
                                  request.dim),
                request.k, request.params));
        }
        std::vector<NodeResponse> responses(q);
        for (std::size_t i = 0; i < q; ++i) {
            rpc::ErrorCode code;
            std::string message;
            if (!waitForNode(futures[i], request.deadline_ms, responses[i],
                             code, message)) {
                // One lost slice fails the whole batch; the client
                // retries per-query so a poisoned query only fails
                // itself (mirrors the node's batch-throw fallback).
                return sendError(socket, frame.id, code, message);
            }
        }
        if (batch_ctx.active) {
            // Retroactive batch-handling span under the first traced
            // member (one span per RPC, not per member).
            obs::TraceRecorder::instance().addSpan(
                "shard.search_batch", batch_start,
                obs::TraceRecorder::Clock::now(),
                {{"cluster", std::to_string(options_.node.node_id), true},
                 {"requests", std::to_string(q), true}},
                batch_ctx);
        }
        return sendReply(socket, rpc::Type::SearchBatchResponse, frame.id,
                         rpc::encodeSearchBatchResponse(responses));
      }
      default:
        return sendError(socket, frame.id, rpc::ErrorCode::BadRequest,
                         "unknown frame type " +
                             std::to_string(frame.type));
    }
}

} // namespace serve
} // namespace hermes
