/**
 * @file
 * The serving side of a shard-per-process fleet: one RetrievalNode
 * behind the framed RPC protocol (serve/rpc.hpp) on a TCP listener.
 *
 * `hermes_shard` wraps this in a process; tests run it in-process over
 * loopback. Each accepted connection gets a handler thread that decodes
 * request frames, submits them to the node's queue, and writes framed
 * responses — so concurrent connections' requests coalesce in the node
 * exactly like concurrent broker threads do in-process, preserving
 * PR 5 micro-batching behind the wire.
 *
 * Failure model:
 *  - An undecodable payload or dimension mismatch answers
 *    ErrorCode::BadRequest; the connection survives.
 *  - A shard search that throws (real or injected fault) answers
 *    ErrorCode::Internal; the connection survives.
 *  - A node future that is not ready within the request's deadline
 *    (plus slack) answers ErrorCode::Timeout — a dropped request can
 *    wedge neither the connection nor shutdown.
 *  - stop() answers in-flight waits with ErrorCode::Shutdown, joins
 *    every handler, then tears down the node.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "index/ann_index.hpp"
#include "net/frame.hpp"
#include "net/net.hpp"
#include "serve/node.hpp"
#include "serve/rpc.hpp"

namespace hermes {
namespace serve {

/** Shard server configuration. */
struct ShardServerOptions
{
    /** Bind address; default loopback (single-host fleets, CI). */
    std::string bind_address = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;

    /** Node queue/batching/fault parameters (node_id tags metrics). */
    NodeConfig node;

    /**
     * Extra milliseconds past a request's own deadline_ms the server
     * will wait on the node future before answering Timeout. Covers
     * clock skew between client submit and server dispatch.
     */
    double deadline_slack_ms = 250.0;

    /**
     * Wait cap (ms) for requests that carry no deadline (deadline_ms
     * <= 0): a fault-dropped request must not hold a connection thread
     * hostage forever.
     */
    double max_wait_ms = 30000.0;

    /** Per-frame payload cap forwarded to net::recvFrame. */
    std::size_t max_frame_payload = net::kDefaultMaxFramePayload;
};

/** Serving statistics of one shard server. */
struct ShardServerStats
{
    std::uint64_t connections_accepted = 0;

    /** Finished handler threads joined by the accept loop. */
    std::uint64_t connections_reaped = 0;

    std::uint64_t requests_served = 0;
    std::uint64_t errors_returned = 0;
};

/** One shard process's serving core. */
class ShardServer
{
  public:
    /**
     * @param shard   Trained index this shard serves (must outlive the
     *                server).
     * @param options Listener + node parameters.
     */
    ShardServer(const index::AnnIndex &shard, ShardServerOptions options);

    /** Stops the server if still running. */
    ~ShardServer();

    ShardServer(const ShardServer &) = delete;
    ShardServer &operator=(const ShardServer &) = delete;

    /**
     * Bind, listen, start the node worker and the accept thread.
     * Returns false with the reason on stderr when the port cannot be
     * bound.
     */
    bool start();

    /** Join every connection, stop accepting, tear down the node. */
    void stop();

    bool running() const { return running_.load(); }

    /** Actual bound port (resolves port 0 after start()). */
    std::uint16_t port() const { return listener_.port(); }

    /** Counters (connections, requests, error replies). */
    ShardServerStats stats() const;

    /** The wrapped node's counters (also served via the Stats RPC). */
    NodeStats nodeStats() const;

  private:
    void acceptLoop();

    /** Join and drop every connection thread whose handler returned. */
    void reapFinishedConnections();

    void handleConnection(net::Socket socket);

    /** Handle one decoded request frame; false = drop the connection. */
    bool dispatch(net::Socket &socket, const net::Frame &frame);

    /**
     * Wait for @p future under @p deadline_ms + slack, in slices that
     * observe stopping_. Fills @p response / @p error; returns the
     * error code to send, or nullopt on success.
     */
    bool waitForNode(std::future<NodeResponse> &future, double deadline_ms,
                     NodeResponse &response, rpc::ErrorCode &code,
                     std::string &message);

    bool sendReply(net::Socket &socket, rpc::Type type, std::uint64_t id,
                   std::string_view payload);
    bool sendError(net::Socket &socket, std::uint64_t id,
                   rpc::ErrorCode code, const std::string &message);

    const index::AnnIndex &shard_;
    ShardServerOptions options_;
    std::unique_ptr<RetrievalNode> node_;
    net::Listener listener_;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::thread accept_thread_;

    /**
     * One handler thread per live connection. The done flag is set by
     * the handler on exit so the accept loop can join and erase
     * finished entries each tick — a long-lived shard serving many
     * short connections must not accumulate exited-but-unjoined
     * threads until stop().
     */
    struct ConnectionThread
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    std::mutex threads_mutex_;
    std::vector<ConnectionThread> connection_threads_;

    mutable std::mutex stats_mutex_;
    ShardServerStats stats_;
};

} // namespace serve
} // namespace hermes
