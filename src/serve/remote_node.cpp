#include "serve/remote_node.hpp"

#include <cmath>
#include <cstdlib>
#include <optional>
#include <stdexcept>

#include "obs/metric_names.hpp"
#include "util/logging.hpp"

namespace hermes {
namespace serve {

namespace {

/** Send budget for one request frame (the peer should always drain). */
constexpr double kSendBudgetMs = 5000.0;

/** Control-channel (stats/health) round-trip budget. */
constexpr double kControlBudgetMs = 2000.0;

/** Offset jump (µs) that marks a peer clock-epoch change (restart).
 *  Same-process drift + RTT noise over a serving run stays well under
 *  this; a process restart resets the trace clock by whole seconds. */
constexpr double kEpochJumpUs = 1e6;

std::runtime_error
remoteError(const std::string &what)
{
    return std::runtime_error("remote node: " + what);
}

const char *
errorCodeName(rpc::ErrorCode code)
{
    switch (code) {
      case rpc::ErrorCode::Timeout: return "timeout";
      case rpc::ErrorCode::BadRequest: return "bad_request";
      case rpc::ErrorCode::Internal: return "internal";
      case rpc::ErrorCode::Shutdown: return "shutdown";
    }
    return "unknown";
}

} // namespace

bool
parseEndpoint(const std::string &spec, std::string &host,
              std::uint16_t &port)
{
    std::size_t colon = spec.rfind(':');
    std::string port_str;
    if (colon == std::string::npos) {
        host = "127.0.0.1";
        port_str = spec;
    } else {
        host = colon == 0 ? std::string("127.0.0.1") : spec.substr(0, colon);
        port_str = spec.substr(colon + 1);
    }
    if (port_str.empty())
        return false;
    char *end = nullptr;
    unsigned long value = std::strtoul(port_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value == 0 || value > 65535)
        return false;
    port = static_cast<std::uint16_t>(value);
    return true;
}

RemoteNodeClient::RemoteNodeClient(RemoteNodeOptions options)
    : options_(std::move(options)),
      endpoint_(options_.host + ":" + std::to_string(options_.port))
{
    HERMES_ASSERT(options_.connections >= 1,
                  "remote node needs at least one connection");
    auto &registry = obs::Registry::instance();
    m_rpcs_ = &registry.counter(obs::names::kRpcRpcs);
    m_request_bytes_ = &registry.counter(obs::names::kRpcRequestBytes);
    m_response_bytes_ = &registry.counter(obs::names::kRpcResponseBytes);
    m_redials_ = &registry.counter(obs::names::kRpcRedials);
    m_transport_failures_ =
        &registry.counter(obs::names::kRpcTransportFailures);
    m_remote_errors_ = &registry.counter(obs::names::kRpcRemoteErrors);
    m_round_trip_us_ = &registry.histogram(obs::names::kRpcRoundTripUs);
    m_batch_size_ = &registry.histogram(obs::names::kRpcBatchSize);
    workers_.reserve(options_.connections);
    for (std::size_t i = 0; i < options_.connections; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

RemoteNodeClient::~RemoteNodeClient()
{
    std::deque<Pending> abandoned;
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        stopping_ = true;
        abandoned.swap(queue_);
    }
    queue_cv_.notify_all();
    for (auto &pending : abandoned) {
        pending.promise.set_exception(
            std::make_exception_ptr(remoteError("client shutting down")));
    }
    for (auto &worker : workers_)
        worker.join();
}

std::future<NodeResponse>
RemoteNodeClient::submit(vecstore::VecView query, std::size_t k,
                         const index::SearchParams &params)
{
    Pending pending;
    pending.query.assign(query.begin(), query.end());
    pending.k = k;
    pending.params = params;
    pending.trace = obs::currentTraceContext();
    auto future = pending.promise.get_future();
    {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        if (stopping_) {
            pending.promise.set_exception(std::make_exception_ptr(
                remoteError("client shutting down")));
            return future;
        }
        queue_.push_back(std::move(pending));
    }
    queue_cv_.notify_one();
    return future;
}

std::size_t
RemoteNodeClient::queueDepth() const
{
    std::unique_lock<std::mutex> lock(queue_mutex_);
    return queue_.size();
}

std::size_t
RemoteNodeClient::shardSize() const
{
    std::size_t cached = shard_vectors_.load();
    if (cached == 0) {
        // First ask (or an unreachable shard): try a health probe.
        health();
        cached = shard_vectors_.load();
    }
    return cached;
}

NodeStats
RemoteNodeClient::stats() const
{
    net::Frame reply;
    if (!controlRoundTrip(rpc::Type::StatsRequest, {}, reply) ||
        static_cast<rpc::Type>(reply.type) != rpc::Type::StatsResponse)
        return NodeStats{};
    try {
        rpc::StatsResponse decoded =
            rpc::decodeStatsResponse(reply.payload);
        shard_vectors_.store(
            static_cast<std::size_t>(decoded.shard_vectors));
        return decoded.stats;
    } catch (const std::exception &) {
        // std::exception, not just WireError: a decode throw of any
        // kind on a broker thread must degrade, never terminate.
        return NodeStats{};
    }
}

bool
RemoteNodeClient::health(rpc::HealthResponse *out) const
{
    auto &recorder = obs::TraceRecorder::instance();
    // Bracket the RPC on the local trace clock: the shard's
    // trace_now_us was read somewhere inside [t0, t1], so mapping it
    // to the midpoint bounds the epoch-offset error by RTT/2.
    auto t0 = obs::TraceRecorder::Clock::now();
    net::Frame reply;
    if (!controlRoundTrip(rpc::Type::HealthRequest,
                          rpc::encodeHealthRequest(rpc::kProtocolVersion),
                          reply) ||
        static_cast<rpc::Type>(reply.type) != rpc::Type::HealthResponse)
        return false;
    auto t1 = obs::TraceRecorder::Clock::now();
    try {
        rpc::HealthResponse decoded =
            rpc::decodeHealthResponse(reply.payload);
        if (decoded.protocol_version < rpc::kMinProtocolVersion ||
            decoded.protocol_version > rpc::kProtocolVersion)
            return false;
        peer_version_.store(decoded.protocol_version,
                            std::memory_order_relaxed);
        shard_vectors_.store(
            static_cast<std::size_t>(decoded.shard_vectors));
        if (decoded.has_clock) {
            double local_t0 = recorder.toMicros(t0);
            double local_t1 = recorder.toMicros(t1);
            double rtt = local_t1 - local_t0;
            double offset =
                (local_t0 + local_t1) / 2.0 - decoded.trace_now_us;
            bool kept = false;
            {
                std::unique_lock<std::mutex> lock(stats_mutex_);
                // A big jump in the measured offset means the peer's
                // trace epoch moved — a restarted shard process — so
                // the old sample (however tight its RTT) refers to a
                // clock that no longer exists and must be replaced.
                bool epoch_changed = clock_sync_.valid &&
                    std::fabs(offset - clock_sync_.offset_us) >
                        kEpochJumpUs;
                if (!clock_sync_.valid || epoch_changed ||
                    rtt <= clock_sync_.rtt_us) {
                    clock_sync_.valid = true;
                    clock_sync_.node_id = decoded.node_id;
                    clock_sync_.offset_us = offset;
                    clock_sync_.rtt_us = rtt;
                    kept = true;
                }
            }
            // The gauge mirrors the kept (lowest-RTT) estimate, not
            // every raw handshake — a slow scrape-time handshake must
            // not overwrite a tight earlier measurement.
            if (kept) {
                obs::Registry::instance()
                    .gauge(obs::names::rpcNodeMetric(
                        decoded.node_id, obs::names::kRpcClockOffsetUs))
                    .set(offset);
            }
            if (recorder.enabled()) {
                // Drop the measurement into the local span stream: the
                // trace-merge tool reads rpc.clock_sync events out of
                // the broker dump to align each shard's timestamps,
                // long after this process has exited.
                obs::TraceSpan sync;
                sync.name = "rpc.clock_sync";
                sync.tid = obs::TraceRecorder::currentThreadId();
                sync.ts_us = local_t1;
                sync.instant = true;
                sync.args = {
                    {"node_id", std::to_string(decoded.node_id), true},
                    {"endpoint", endpoint_, false},
                    {"offset_us", obs::detail::jsonNumber(offset), true},
                    {"rtt_us", obs::detail::jsonNumber(rtt), true}};
                recorder.record(std::move(sync));
            }
        }
        if (out)
            *out = decoded;
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

RemoteClockSync
RemoteNodeClient::clockSync() const
{
    std::unique_lock<std::mutex> lock(stats_mutex_);
    return clock_sync_;
}

RemoteNodeClientStats
RemoteNodeClient::clientStats() const
{
    std::unique_lock<std::mutex> lock(stats_mutex_);
    return client_stats_;
}

bool
RemoteNodeClient::compatible(const Pending &a, const Pending &b)
{
    return a.k == b.k && a.params.nprobe == b.params.nprobe &&
        a.params.ef_search == b.params.ef_search &&
        a.params.prune_ratio == b.params.prune_ratio &&
        a.params.batch_min_scan_floats == b.params.batch_min_scan_floats &&
        a.query.size() == b.query.size();
}

void
RemoteNodeClient::workerLoop()
{
    net::Socket socket; // worker-owned connection, re-dialed on demand
    for (;;) {
        std::vector<Pending> group;
        {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_cv_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            group.push_back(std::move(queue_.front()));
            queue_.pop_front();
            // Wire-level micro-batching: whatever compatible requests
            // are already queued ride the same RPC (no added waiting —
            // the shard's own batch window supplies the hold).
            while (!queue_.empty() && group.size() < options_.max_batch &&
                   compatible(queue_.front(), group.front())) {
                group.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
        }
        runRpc(socket, group);
    }
}

void
RemoteNodeClient::failGroup(std::vector<Pending> &group,
                            const std::string &reason)
{
    for (auto &pending : group) {
        pending.promise.set_exception(
            std::make_exception_ptr(remoteError(reason)));
    }
    group.clear();
}

void
RemoteNodeClient::countRemoteError(rpc::ErrorCode code) const
{
    m_remote_errors_->add(1);
    // Error replies are rare; the per-code lookup can afford the
    // registry lock (unlike the cached hot-path counters above).
    obs::Registry::instance()
        .counter(obs::names::rpcErrorMetric(errorCodeName(code)))
        .add(1);
}

bool
RemoteNodeClient::ensureConnected(net::Socket &socket)
{
    if (socket.valid())
        return true;
    std::string error;
    socket = net::connectTo(options_.host, options_.port,
                            options_.connect_timeout_ms, &error);
    if (!socket.valid()) {
        HERMES_DEBUG("remote node dial failed: ", error);
        return false;
    }
    m_redials_->add(1);
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++client_stats_.reconnects;
    }
    // Automatic version handshake on every successful dial: callers
    // that never health-gate explicitly (plain submit() traffic) still
    // negotiate v2 and get trace propagation, and a redial after a
    // shard restart re-measures the new process's clock epoch (the old
    // offset is meaningless against it). A failed attempt just leaves
    // the peer version unknown (= inject nothing), never blocks
    // traffic; dials are rare so the extra control RPC is noise.
    health();
    return true;
}

bool
RemoteNodeClient::roundTrip(net::Socket &socket, rpc::Type type,
                            std::string_view payload, net::Frame &reply)
{
    std::uint64_t id = next_id_.fetch_add(1);
    m_rpcs_->add(1);
    m_request_bytes_->add(net::kFrameHeaderBytes + payload.size());
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++client_stats_.rpcs_sent;
    }
    auto rpc_start = obs::TraceRecorder::Clock::now();
    net::IoStatus sent =
        net::sendFrame(socket, static_cast<std::uint32_t>(type), id,
                       payload, net::Deadline::after(kSendBudgetMs));
    if (sent != net::IoStatus::Ok) {
        socket.close();
        m_transport_failures_->add(1);
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++client_stats_.transport_failures;
        return false;
    }
    double budget = options_.request_deadline_ms > 0.0
        ? options_.request_deadline_ms + options_.response_slack_ms
        : options_.max_response_wait_ms;
    net::IoStatus got = net::recvFrame(socket, reply,
                                       net::Deadline::after(budget));
    // One outstanding RPC per connection, so the reply id must match;
    // anything else means the stream is desynced — poison the socket
    // so the next request starts from a clean dial.
    if (got != net::IoStatus::Ok || reply.id != id) {
        socket.close();
        m_transport_failures_->add(1);
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++client_stats_.transport_failures;
        return false;
    }
    m_response_bytes_->add(net::kFrameHeaderBytes + reply.payload.size());
    m_round_trip_us_->observe(
        std::chrono::duration<double, std::micro>(
            obs::TraceRecorder::Clock::now() - rpc_start)
            .count());
    return true;
}

void
RemoteNodeClient::retrySingles(net::Socket &socket,
                               std::vector<Pending> &group)
{
    const bool inject = peerVersion() >= 2;
    for (std::size_t i = 0; i < group.size(); ++i) {
        auto &pending = group[i];
        rpc::SearchRequest request;
        request.k = pending.k;
        request.params = pending.params;
        request.deadline_ms = options_.request_deadline_ms;
        request.query = pending.query;
        net::Frame reply;
        bool ok;
        {
            // rpc.search spans the wire round trip; the injected
            // context's parent is the span itself, so shard-side spans
            // nest under it. Scope closes before the reply is acted on
            // so a per-query retry never runs inside another request's
            // context.
            std::optional<obs::TraceContext> trace_context;
            std::optional<obs::ScopedSpan> span;
            if (pending.trace.active) {
                trace_context.emplace(pending.trace);
                span.emplace("rpc.search");
                span->arg("endpoint", endpoint_);
                if (inject) {
                    request.trace = obs::currentTraceContext();
                } else {
                    span->arg("peer_untraced", std::string("v1"));
                }
            }
            m_batch_size_->observe(1.0);
            ok = ensureConnected(socket) &&
                roundTrip(socket, rpc::Type::SearchRequest,
                          rpc::encodeSearchRequest(request), reply);
        }
        if (!ok) {
            pending.promise.set_exception(std::make_exception_ptr(
                remoteError("transport failure to " + options_.host + ":" +
                            std::to_string(options_.port))));
            continue;
        }
        if (static_cast<rpc::Type>(reply.type) ==
            rpc::Type::SearchResponse) {
            try {
                pending.promise.set_value(
                    rpc::decodeSearchResponse(reply.payload));
                continue;
            } catch (const std::exception &e) {
                socket.close();
                pending.promise.set_exception(
                    std::make_exception_ptr(remoteError(e.what())));
                continue;
            }
        }
        std::string reason = "unexpected frame type " +
            std::to_string(reply.type);
        if (static_cast<rpc::Type>(reply.type) ==
            rpc::Type::ErrorResponse) {
            rpc::ErrorCode code = rpc::ErrorCode::Internal;
            try {
                rpc::ErrorBody body = rpc::decodeError(reply.payload);
                reason = body.message;
                code = body.code;
            } catch (const std::exception &) {
            }
            countRemoteError(code);
            {
                std::unique_lock<std::mutex> lock(stats_mutex_);
                ++client_stats_.remote_errors;
            }
        } else {
            socket.close();
        }
        pending.promise.set_exception(
            std::make_exception_ptr(remoteError(reason)));
    }
    group.clear();
}

void
RemoteNodeClient::runRpc(net::Socket &socket, std::vector<Pending> &group)
{
    if (!ensureConnected(socket)) {
        failGroup(group, "cannot reach " + options_.host + ":" +
                             std::to_string(options_.port));
        return;
    }

    if (group.size() == 1) {
        retrySingles(socket, group); // the single path IS the retry path
        return;
    }

    const auto &head = group.front();
    rpc::SearchBatchRequest request;
    request.k = head.k;
    request.params = head.params;
    request.deadline_ms = options_.request_deadline_ms;
    request.dim = head.query.size();
    request.queries.reserve(group.size() * request.dim);
    for (const auto &pending : group) {
        request.queries.insert(request.queries.end(),
                               pending.query.begin(), pending.query.end());
    }
    {
        std::unique_lock<std::mutex> lock(stats_mutex_);
        ++client_stats_.batched_rpcs;
        client_stats_.batched_requests += group.size();
    }

    net::Frame reply;
    bool sent_ok;
    {
        // One rpc.search_batch span per coalesced RPC, opened in the
        // first traced member's context. Members of *other* traces (a
        // coalesced RPC can mix them) keep their own identity on the
        // wire, parented to their original broker-side span.
        std::optional<obs::TraceContext> trace_context;
        std::optional<obs::ScopedSpan> span;
        obs::TraceContextSnapshot span_ctx;
        for (const auto &pending : group) {
            if (pending.trace.active) {
                span_ctx = pending.trace;
                break;
            }
        }
        if (span_ctx.active) {
            trace_context.emplace(span_ctx);
            span.emplace("rpc.search_batch");
            span->arg("endpoint", endpoint_);
            span->arg("requests",
                      static_cast<std::uint64_t>(group.size()));
        }
        if (peerVersion() >= 2 && span && span->active()) {
            request.traces.resize(group.size());
            for (std::size_t i = 0; i < group.size(); ++i) {
                const auto &trace = group[i].trace;
                if (!trace.active)
                    continue;
                request.traces[i] = trace;
                if (trace.trace_id == span_ctx.trace_id)
                    request.traces[i].parent_span_id = span->spanId();
            }
        }
        m_batch_size_->observe(static_cast<double>(group.size()));
        sent_ok = roundTrip(socket, rpc::Type::SearchBatchRequest,
                            rpc::encodeSearchBatchRequest(request), reply);
    }
    if (!sent_ok) {
        failGroup(group, "transport failure to " + options_.host + ":" +
                             std::to_string(options_.port));
        return;
    }

    switch (static_cast<rpc::Type>(reply.type)) {
      case rpc::Type::SearchBatchResponse: {
        std::vector<NodeResponse> responses;
        try {
            responses = rpc::decodeSearchBatchResponse(reply.payload);
        } catch (const std::exception &e) {
            socket.close();
            failGroup(group, e.what());
            return;
        }
        if (responses.size() != group.size()) {
            socket.close();
            failGroup(group, "batch response cardinality mismatch");
            return;
        }
        for (std::size_t i = 0; i < group.size(); ++i)
            group[i].promise.set_value(std::move(responses[i]));
        group.clear();
        return;
      }
      case rpc::Type::ErrorResponse: {
        rpc::ErrorCode code = rpc::ErrorCode::Internal;
        try {
            code = rpc::decodeError(reply.payload).code;
        } catch (const std::exception &) {
        }
        countRemoteError(code);
        {
            std::unique_lock<std::mutex> lock(stats_mutex_);
            ++client_stats_.remote_errors;
        }
        // A batch-level fault (one poisoned query, a shard-side
        // timeout) must not fail its neighbours: retry each request
        // as its own RPC so only the guilty one carries the error.
        retrySingles(socket, group);
        return;
      }
      default:
        socket.close();
        failGroup(group,
                  "unexpected frame type " + std::to_string(reply.type));
        return;
    }
}

bool
RemoteNodeClient::controlRoundTrip(rpc::Type type,
                                   std::string_view payload,
                                   net::Frame &reply) const
{
    std::unique_lock<std::mutex> lock(control_mutex_);
    auto attempt = [&](bool &dialed) {
        dialed = false;
        if (!control_socket_.valid()) {
            std::string error;
            control_socket_ = net::connectTo(
                options_.host, options_.port,
                options_.connect_timeout_ms, &error);
            if (!control_socket_.valid())
                return false;
            dialed = true;
        }
        std::uint64_t id = next_id_.fetch_add(1);
        net::IoStatus sent = net::sendFrame(
            control_socket_, static_cast<std::uint32_t>(type), id,
            payload, net::Deadline::after(kControlBudgetMs));
        if (sent != net::IoStatus::Ok) {
            control_socket_.close();
            return false;
        }
        net::IoStatus got = net::recvFrame(
            control_socket_, reply,
            net::Deadline::after(kControlBudgetMs));
        if (got != net::IoStatus::Ok || reply.id != id) {
            control_socket_.close();
            return false;
        }
        return true;
    };
    bool dialed = false;
    if (attempt(dialed))
        return true;
    // A failure over a pre-existing connection usually means the socket
    // went stale behind our back (shard restarted since the last stats
    // call); one fresh dial answers instead of reporting the shard down.
    return !dialed && attempt(dialed);
}

} // namespace serve
} // namespace hermes
