/**
 * @file
 * The broker's view of a retrieval node, abstracted over placement.
 *
 * HermesBroker fans requests out to NodeClient instances; whether a
 * node is an in-process RetrievalNode thread (LocalNodeClient) or a
 * separate hermes_shard process across a socket (RemoteNodeClient,
 * serve/remote_node.hpp) is invisible to the scheduling logic — both
 * return std::future<NodeResponse> from submit(), and both surface
 * failures as exceptions through the future so the broker's PR 1
 * deadline / retry / degradation machinery applies unchanged.
 */

#pragma once

#include <future>
#include <memory>

#include "serve/node.hpp"

namespace hermes {
namespace serve {

/** Placement-agnostic handle to one retrieval node. */
class NodeClient
{
  public:
    virtual ~NodeClient() = default;

    /**
     * Enqueue a search. The query is copied before return. The future
     * yields a response, rethrows the node's failure, or — for a dead
     * or dropping node — may never become ready, which the broker's
     * deadline converts into a timeout.
     */
    virtual std::future<NodeResponse>
    submit(vecstore::VecView query, std::size_t k,
           const index::SearchParams &params) = 0;

    /** Node counters (remote: an RPC; zeros when unreachable). */
    virtual NodeStats stats() const = 0;

    /** Requests waiting (local queue; remote: client-side pending). */
    virtual std::size_t queueDepth() const = 0;

    /** Vectors stored on the node's shard. */
    virtual std::size_t shardSize() const = 0;
};

/**
 * In-process node: owns a RetrievalNode worker over a shard index.
 * This is the pre-fleet deployment shape (threads sharing one
 * DistributedStore) and the bit-parity reference for the remote path.
 */
class LocalNodeClient final : public NodeClient
{
  public:
    LocalNodeClient(const index::AnnIndex &shard, const NodeConfig &config)
        : node_(std::make_unique<RetrievalNode>(shard, config))
    {
    }

    std::future<NodeResponse>
    submit(vecstore::VecView query, std::size_t k,
           const index::SearchParams &params) override
    {
        return node_->submit(query, k, params);
    }

    NodeStats stats() const override { return node_->stats(); }
    std::size_t queueDepth() const override { return node_->queueDepth(); }
    std::size_t shardSize() const override { return node_->shardSize(); }

    /** The wrapped node (tests and tools). */
    RetrievalNode &node() { return *node_; }

  private:
    std::unique_ptr<RetrievalNode> node_;
};

} // namespace serve
} // namespace hermes
