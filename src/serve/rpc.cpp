#include "serve/rpc.hpp"

namespace hermes {
namespace serve {
namespace rpc {

namespace {

/** Encoded size of one Hit: i64 id + f32 score. */
constexpr std::size_t kHitWireBytes = 12;

/** Minimum encoded size of one NodeResponse: empty-hit u32 + 4 stats u64s. */
constexpr std::size_t kMinResponseWireBytes = 36;

void
encodeParams(net::WireWriter &writer, std::size_t k,
             const index::SearchParams &params, double deadline_ms)
{
    writer.u64(k);
    writer.u64(params.nprobe);
    writer.u64(params.ef_search);
    writer.f64(params.prune_ratio);
    writer.u64(params.batch_min_scan_floats);
    writer.f64(deadline_ms);
}

void
decodeParams(net::WireReader &reader, std::size_t &k,
             index::SearchParams &params, double &deadline_ms)
{
    k = reader.u64();
    params.nprobe = reader.u64();
    params.ef_search = reader.u64();
    params.prune_ratio = reader.f64();
    params.batch_min_scan_floats = reader.u64();
    deadline_ms = reader.f64();
}

void
encodeStats(net::WireWriter &writer, const index::SearchStats &stats)
{
    writer.u64(stats.lists_probed);
    writer.u64(stats.vectors_scanned);
    writer.u64(stats.distance_computations);
    writer.u64(stats.bytes_scanned);
}

index::SearchStats
decodeStats(net::WireReader &reader)
{
    index::SearchStats stats;
    stats.lists_probed = reader.u64();
    stats.vectors_scanned = reader.u64();
    stats.distance_computations = reader.u64();
    stats.bytes_scanned = reader.u64();
    return stats;
}

void
encodeHits(net::WireWriter &writer, const vecstore::HitList &hits)
{
    writer.u32(static_cast<std::uint32_t>(hits.size()));
    for (const auto &hit : hits) {
        writer.i64(hit.id);
        writer.f32(hit.score);
    }
}

vecstore::HitList
decodeHits(net::WireReader &reader)
{
    std::uint32_t n = reader.u32();
    // Bound the claimed count by the bytes actually present before
    // reserving: a corrupt frame claiming ~4e9 hits must fail as a
    // WireError, not as a multi-GB allocation attempt.
    reader.needCount(n, kHitWireBytes);
    vecstore::HitList hits;
    hits.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        vecstore::Hit hit;
        hit.id = reader.i64();
        hit.score = reader.f32();
        hits.push_back(hit);
    }
    return hits;
}

void
encodeOneResponse(net::WireWriter &writer, const NodeResponse &response)
{
    encodeHits(writer, response.hits);
    encodeStats(writer, response.stats);
}

NodeResponse
decodeOneResponse(net::WireReader &reader)
{
    NodeResponse response;
    response.hits = decodeHits(reader);
    response.stats = decodeStats(reader);
    return response;
}

/** Trailing trace-context block marker (SearchRequest v2). */
constexpr std::uint8_t kTraceContextFlag = 1;

} // namespace

std::string
encodeSearchRequest(const SearchRequest &request)
{
    net::WireWriter writer;
    encodeParams(writer, request.k, request.params, request.deadline_ms);
    writer.floats(request.query.data(), request.query.size());
    if (request.trace.active) {
        // Optional trailing block: a v2 shard reads it, a v1 shard
        // never receives it (Health-gated injection).
        writer.u8(kTraceContextFlag);
        writer.u64(request.trace.trace_id);
        writer.u64(request.trace.parent_span_id);
    }
    return writer.take();
}

SearchRequest
decodeSearchRequest(std::string_view payload)
{
    net::WireReader reader(payload);
    SearchRequest request;
    decodeParams(reader, request.k, request.params, request.deadline_ms);
    request.query = reader.floats();
    if (!reader.atEnd()) {
        if (reader.u8() != kTraceContextFlag)
            throw net::WireError("bad trace-context flag");
        request.trace.active = true;
        request.trace.trace_id = reader.u64();
        request.trace.parent_span_id = reader.u64();
    }
    reader.expectEnd();
    return request;
}

std::string
encodeSearchBatchRequest(const SearchBatchRequest &request)
{
    net::WireWriter writer;
    encodeParams(writer, request.k, request.params, request.deadline_ms);
    writer.u64(request.dim);
    writer.floats(request.queries.data(), request.queries.size());
    std::uint32_t active = 0;
    for (const auto &trace : request.traces)
        active += trace.active ? 1 : 0;
    if (active > 0) {
        // Sparse trailing list: only traced slots go on the wire.
        writer.u32(active);
        for (std::size_t i = 0; i < request.traces.size(); ++i) {
            if (!request.traces[i].active)
                continue;
            writer.u32(static_cast<std::uint32_t>(i));
            writer.u64(request.traces[i].trace_id);
            writer.u64(request.traces[i].parent_span_id);
        }
    }
    return writer.take();
}

SearchBatchRequest
decodeSearchBatchRequest(std::string_view payload)
{
    net::WireReader reader(payload);
    SearchBatchRequest request;
    decodeParams(reader, request.k, request.params, request.deadline_ms);
    request.dim = reader.u64();
    request.queries = reader.floats();
    if (request.dim == 0 || request.queries.size() % request.dim != 0)
        throw net::WireError("batch query block not a multiple of dim");
    if (!reader.atEnd()) {
        const std::size_t q = request.numQueries();
        std::uint32_t n = reader.u32();
        // 20 wire bytes per entry; bound the claimed count by both the
        // remaining payload and the batch size before allocating.
        reader.needCount(n, 20);
        if (n > q)
            throw net::WireError("more trace contexts than queries");
        request.traces.assign(q, obs::TraceContextSnapshot{});
        for (std::uint32_t e = 0; e < n; ++e) {
            std::uint32_t slot = reader.u32();
            if (slot >= q)
                throw net::WireError("trace context slot out of range");
            auto &trace = request.traces[slot];
            trace.active = true;
            trace.trace_id = reader.u64();
            trace.parent_span_id = reader.u64();
        }
    }
    reader.expectEnd();
    return request;
}

std::string
encodeSearchResponse(const NodeResponse &response)
{
    net::WireWriter writer;
    encodeOneResponse(writer, response);
    return writer.take();
}

NodeResponse
decodeSearchResponse(std::string_view payload)
{
    net::WireReader reader(payload);
    NodeResponse response = decodeOneResponse(reader);
    reader.expectEnd();
    return response;
}

std::string
encodeSearchBatchResponse(const std::vector<NodeResponse> &responses)
{
    net::WireWriter writer;
    writer.u32(static_cast<std::uint32_t>(responses.size()));
    for (const auto &response : responses)
        encodeOneResponse(writer, response);
    return writer.take();
}

std::vector<NodeResponse>
decodeSearchBatchResponse(std::string_view payload)
{
    net::WireReader reader(payload);
    std::uint32_t n = reader.u32();
    reader.needCount(n, kMinResponseWireBytes);
    std::vector<NodeResponse> responses;
    responses.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        responses.push_back(decodeOneResponse(reader));
    reader.expectEnd();
    return responses;
}

std::string
encodeStatsResponse(const StatsResponse &response)
{
    net::WireWriter writer;
    writer.u64(response.stats.requests);
    writer.u64(response.stats.batches);
    writer.f64(response.stats.busy_seconds);
    writer.u64(response.stats.vectors_scanned);
    writer.u64(response.stats.failures);
    writer.u64(response.stats.dropped);
    writer.u64(response.stats.hits_returned);
    writer.f64(response.stats.energy_joules);
    writer.u64(response.queue_depth);
    writer.u64(response.shard_vectors);
    return writer.take();
}

StatsResponse
decodeStatsResponse(std::string_view payload)
{
    net::WireReader reader(payload);
    StatsResponse response;
    response.stats.requests = reader.u64();
    response.stats.batches = reader.u64();
    response.stats.busy_seconds = reader.f64();
    response.stats.vectors_scanned = reader.u64();
    response.stats.failures = reader.u64();
    response.stats.dropped = reader.u64();
    response.stats.hits_returned = reader.u64();
    response.stats.energy_joules = reader.f64();
    response.queue_depth = reader.u64();
    response.shard_vectors = reader.u64();
    reader.expectEnd();
    return response;
}

std::string
encodeHealthRequest(std::uint32_t client_version)
{
    net::WireWriter writer;
    writer.u32(client_version);
    return writer.take();
}

std::uint32_t
decodeHealthRequest(std::string_view payload)
{
    // v1 clients send an empty Health payload (and v1 shards ignore the
    // payload entirely, which is what makes sending a version safe).
    if (payload.empty())
        return 1;
    net::WireReader reader(payload);
    std::uint32_t version = reader.u32();
    reader.expectEnd();
    if (version == 0)
        throw net::WireError("health request version 0");
    return version;
}

std::string
encodeHealthResponse(const HealthResponse &response)
{
    net::WireWriter writer;
    writer.u32(response.protocol_version);
    writer.u32(response.node_id);
    writer.u32(response.dim);
    writer.u64(response.shard_vectors);
    if (response.has_clock)
        writer.f64(response.trace_now_us);
    return writer.take();
}

HealthResponse
decodeHealthResponse(std::string_view payload)
{
    net::WireReader reader(payload);
    HealthResponse response;
    response.protocol_version = reader.u32();
    response.node_id = reader.u32();
    response.dim = reader.u32();
    response.shard_vectors = reader.u64();
    if (!reader.atEnd()) {
        response.trace_now_us = reader.f64();
        response.has_clock = true;
    }
    reader.expectEnd();
    return response;
}

std::string
encodeError(ErrorCode code, const std::string &message)
{
    net::WireWriter writer;
    writer.u32(static_cast<std::uint32_t>(code));
    writer.str(message);
    return writer.take();
}

ErrorBody
decodeError(std::string_view payload)
{
    net::WireReader reader(payload);
    ErrorBody body;
    body.code = static_cast<ErrorCode>(reader.u32());
    body.message = reader.str();
    reader.expectEnd();
    return body;
}

} // namespace rpc
} // namespace serve
} // namespace hermes
