#include "serve/trace_merge.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/minijson.hpp"

namespace hermes {
namespace serve {

namespace {

using util::json::Value;

/** Re-serialize a parsed JSON subtree (args objects ride through the
 *  merge verbatim; minijson has no writer of its own). */
void
writeValue(const Value &value, std::string &out)
{
    switch (value.type()) {
      case Value::Type::Null:
        out += "null";
        return;
      case Value::Type::Bool:
        out += value.boolOr(false) ? "true" : "false";
        return;
      case Value::Type::Number:
        out += obs::detail::jsonNumber(value.numberOr(0.0));
        return;
      case Value::Type::String:
        out += "\"" + obs::detail::jsonEscape(value.stringOr("")) + "\"";
        return;
      case Value::Type::Array: {
        out += "[";
        for (std::size_t i = 0; i < value.items().size(); ++i) {
            if (i)
                out += ", ";
            writeValue(value.items()[i], out);
        }
        out += "]";
        return;
      }
      case Value::Type::Object: {
        out += "{";
        for (std::size_t i = 0; i < value.keys().size(); ++i) {
            if (i)
                out += ", ";
            out += "\"" + obs::detail::jsonEscape(value.keys()[i]) +
                "\": ";
            writeValue(value.items()[i], out);
        }
        out += "}";
        return;
      }
    }
}

/**
 * Emit one trace event under a new pid, shifting its "ts" by
 * @p offset_us. Every other field (name, ph, tid, dur, args, ...)
 * passes through unmodified, so span identity survives the merge.
 */
void
writeEvent(const Value &event, int pid, double offset_us, std::string &out)
{
    out += "{\"pid\": " + std::to_string(pid);
    const auto &keys = event.keys();
    const auto &items = event.items();
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const std::string &key = keys[i];
        if (key == "pid")
            continue;
        out += ", \"" + obs::detail::jsonEscape(key) + "\": ";
        if (key == "ts" && items[i].isNumber())
            out += obs::detail::jsonNumber(items[i].numberOr(0.0) +
                                           offset_us);
        else
            writeValue(items[i], out);
    }
    out += "}";
}

/** Chrome process_name metadata row for @p pid. */
void
writeProcessName(int pid, const std::string &label, std::string &out)
{
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
        std::to_string(pid) + ", \"args\": {\"name\": \"" +
        obs::detail::jsonEscape(label) + "\"}}";
}

const Value *
traceEvents(const Value &root)
{
    const Value *events = root.find("traceEvents");
    return events && events->isArray() ? events : nullptr;
}

/** A dump's display label: metadata.process [+ cluster], else fallback. */
std::string
dumpLabel(const Value &root, const std::string &fallback)
{
    const Value *meta = root.find("metadata");
    if (!meta)
        return fallback;
    std::string label = meta->find("process")
        ? meta->find("process")->stringOr(fallback)
        : fallback;
    const Value *cluster = meta->find("cluster");
    if (cluster && cluster->isNumber()) {
        label += " " + std::to_string(static_cast<long long>(
                           cluster->numberOr(0.0)));
    }
    return label;
}

/** metadata.cluster as a node id; negative when absent. */
long long
dumpCluster(const Value &root)
{
    const Value *cluster = root.at({"metadata", "cluster"});
    if (cluster && cluster->isNumber())
        return static_cast<long long>(cluster->numberOr(-1.0));
    return -1;
}

} // namespace

std::vector<TraceClockSync>
extractClockSyncs(const std::string &broker_json)
{
    std::vector<TraceClockSync> syncs;
    auto parsed = util::json::parse(broker_json);
    if (!parsed.ok)
        return syncs;
    const Value *events = traceEvents(parsed.value);
    if (!events)
        return syncs;
    std::vector<TraceClockSync> samples;
    for (const auto &event : events->items()) {
        const Value *name = event.find("name");
        if (!name || name->stringOr("") != "rpc.clock_sync")
            continue;
        const Value *args = event.find("args");
        if (!args)
            continue;
        const Value *node = args->find("node_id");
        const Value *offset = args->find("offset_us");
        const Value *rtt = args->find("rtt_us");
        if (!node || !node->isNumber() || !offset || !offset->isNumber())
            continue;
        TraceClockSync sync;
        sync.node_id =
            static_cast<std::uint32_t>(node->numberOr(0.0));
        sync.offset_us = offset->numberOr(0.0);
        sync.rtt_us = rtt ? rtt->numberOr(0.0) : 0.0;
        samples.push_back(sync);
    }
    // A shard restart resets its trace clock, so older samples for the
    // same node can be off by whole seconds and must not win on RTT.
    // The dump we merge belongs to the process alive at the end of the
    // run, so: anchor on each node's LAST sample (append order = time
    // order), then take the lowest-RTT sample from the same epoch —
    // i.e. whose offset sits within the restart-jump threshold of the
    // anchor. kEpochToleranceUs mirrors the client-side epoch detector.
    constexpr double kEpochToleranceUs = 1e6;
    for (std::size_t i = samples.size(); i-- > 0;) {
        const auto &anchor = samples[i];
        bool seen = false;
        for (const auto &existing : syncs)
            seen = seen || existing.node_id == anchor.node_id;
        if (seen)
            continue;
        TraceClockSync best = anchor;
        for (const auto &sample : samples) {
            if (sample.node_id != anchor.node_id)
                continue;
            if (std::fabs(sample.offset_us - anchor.offset_us) >
                kEpochToleranceUs)
                continue;
            // Lowest RTT wins within the epoch: its midpoint estimate
            // has the tightest error bound.
            if (sample.rtt_us <= best.rtt_us)
                best = sample;
        }
        syncs.push_back(best);
    }
    return syncs;
}

TraceMergeResult
mergeTraces(const TraceDumpInput &broker,
            const std::vector<TraceDumpInput> &shards)
{
    TraceMergeResult result;
    auto broker_parsed = util::json::parse(broker.json);
    if (!broker_parsed.ok) {
        result.error = "broker dump (" + broker.source +
            ") unparseable: " + broker_parsed.error;
        return result;
    }
    const Value *broker_events = traceEvents(broker_parsed.value);
    if (!broker_events) {
        result.error = "broker dump (" + broker.source +
            ") has no traceEvents array";
        return result;
    }
    auto syncs = extractClockSyncs(broker.json);

    std::string out = "{\"traceEvents\": [";
    bool first = true;
    auto emit = [&](const std::string &piece) {
        out += first ? "\n  " : ",\n  ";
        out += piece;
        first = false;
    };

    {
        std::string row;
        writeProcessName(
            1, dumpLabel(broker_parsed.value, "broker"), row);
        emit(row);
    }
    for (const auto &event : broker_events->items()) {
        std::string row;
        writeEvent(event, 1, 0.0, row);
        emit(row);
        ++result.events;
    }
    result.processes = 1;

    for (std::size_t s = 0; s < shards.size(); ++s) {
        const auto &shard = shards[s];
        auto parsed = util::json::parse(shard.json);
        if (!parsed.ok) {
            result.warnings.push_back("shard dump (" + shard.source +
                                      ") unparseable: " + parsed.error +
                                      "; skipped");
            continue;
        }
        const Value *events = traceEvents(parsed.value);
        if (!events) {
            result.warnings.push_back("shard dump (" + shard.source +
                                      ") has no traceEvents; skipped");
            continue;
        }
        const int pid = static_cast<int>(2 + s);
        long long cluster = dumpCluster(parsed.value);
        double offset = 0.0;
        bool aligned = false;
        for (const auto &sync : syncs) {
            if (cluster >= 0 &&
                sync.node_id == static_cast<std::uint32_t>(cluster)) {
                offset = sync.offset_us;
                aligned = true;
                break;
            }
        }
        if (!aligned) {
            result.warnings.push_back(
                "shard dump (" + shard.source +
                ") has no rpc.clock_sync match in the broker dump; "
                "merged with unaligned timestamps");
        }
        {
            std::string row;
            writeProcessName(pid, dumpLabel(parsed.value, shard.source),
                             row);
            emit(row);
        }
        for (const auto &event : events->items()) {
            std::string row;
            writeEvent(event, pid, offset, row);
            emit(row);
            ++result.events;
        }
        ++result.processes;
    }

    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    result.json = std::move(out);
    result.ok = true;
    return result;
}

namespace {

/** Hex span id out of an event's args ("00c0ffee…"); 0 when absent. */
std::uint64_t
argHexId(const Value &event, const char *key)
{
    const Value *args = event.find("args");
    if (!args)
        return 0;
    const Value *id = args->find(key);
    if (!id || !id->isString())
        return 0;
    return std::strtoull(id->stringOr("").c_str(), nullptr, 16);
}

/** One duration span lifted out of a dump for folding. */
struct FoldSpan
{
    std::string name;
    double dur_us = 0.0;
    double child_us = 0.0; ///< sum of direct children's durations
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
};

} // namespace

FlameFoldResult
foldStacks(const std::vector<TraceDumpInput> &dumps)
{
    FlameFoldResult result;

    std::vector<FoldSpan> spans;
    std::size_t parsed_dumps = 0;
    for (const auto &dump : dumps) {
        auto parsed = util::json::parse(dump.json);
        if (!parsed.ok) {
            result.warnings.push_back("dump (" + dump.source +
                                      ") unparseable: " + parsed.error +
                                      "; skipped");
            continue;
        }
        const Value *events = traceEvents(parsed.value);
        if (!events) {
            result.warnings.push_back("dump (" + dump.source +
                                      ") has no traceEvents; skipped");
            continue;
        }
        ++parsed_dumps;
        for (const auto &event : events->items()) {
            const Value *ph = event.find("ph");
            if (!ph || ph->stringOr("") != "X")
                continue; // instants and metadata carry no duration
            const Value *name = event.find("name");
            const Value *dur = event.find("dur");
            if (!name || !dur || !dur->isNumber())
                continue;
            FoldSpan span;
            span.name = name->stringOr("");
            // The folded format reserves ';' (frame separator) and
            // ' ' (weight separator).
            std::replace(span.name.begin(), span.name.end(), ';', '_');
            std::replace(span.name.begin(), span.name.end(), ' ', '_');
            if (span.name.empty())
                continue;
            span.dur_us = std::max(0.0, dur->numberOr(0.0));
            span.span_id = argHexId(event, "span_id");
            span.parent_span_id = argHexId(event, "parent_span_id");
            spans.push_back(std::move(span));
        }
    }
    if (parsed_dumps == 0) {
        result.error = "no dump parsed";
        return result;
    }

    std::unordered_map<std::uint64_t, std::size_t> by_id;
    by_id.reserve(spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
        if (spans[i].span_id != 0)
            by_id.emplace(spans[i].span_id, i);
    }
    for (const FoldSpan &span : spans) {
        if (span.parent_span_id == 0)
            continue;
        auto it = by_id.find(span.parent_span_id);
        if (it != by_id.end())
            spans[it->second].child_us += span.dur_us;
    }

    // Each span contributes its *self* time under its full ancestor
    // chain. Parallel children (a fan-out's node spans overlap in wall
    // time) can sum past the parent's duration; clamping at zero keeps
    // the parent from going negative rather than inventing time.
    constexpr std::size_t kMaxDepth = 128;
    std::map<std::string, double> folded; // ordered => deterministic output
    for (const FoldSpan &span : spans) {
        double self_us = std::max(0.0, span.dur_us - span.child_us);
        std::vector<const std::string *> chain;
        chain.push_back(&span.name);
        std::uint64_t parent = span.parent_span_id;
        while (parent != 0 && chain.size() < kMaxDepth) {
            auto it = by_id.find(parent);
            if (it == by_id.end())
                break; // parent sampled out or from an absent dump
            chain.push_back(&spans[it->second].name);
            parent = spans[it->second].parent_span_id;
        }
        std::string stack;
        for (std::size_t i = chain.size(); i-- > 0;) {
            if (!stack.empty())
                stack += ';';
            stack += *chain[i];
        }
        folded[stack] += self_us;
        ++result.spans;
    }

    for (const auto &[stack, weight_us] : folded) {
        long long weight = std::llround(weight_us);
        if (weight <= 0)
            continue; // sub-microsecond leftovers are noise, drop them
        result.folded += stack + " " + std::to_string(weight) + "\n";
        ++result.stacks;
    }
    result.ok = true;
    return result;
}

} // namespace serve
} // namespace hermes
