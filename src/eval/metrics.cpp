#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.hpp"

namespace hermes {
namespace eval {

double
recallAtK(const vecstore::HitList &retrieved,
          const vecstore::HitList &ground_truth, std::size_t k)
{
    HERMES_ASSERT(k > 0, "recall@k needs k > 0");
    std::unordered_set<vecstore::VecId> truth;
    for (std::size_t i = 0; i < std::min(k, ground_truth.size()); ++i)
        truth.insert(ground_truth[i].id);
    if (truth.empty())
        return 0.0;

    std::size_t found = 0;
    for (std::size_t i = 0; i < std::min(k, retrieved.size()); ++i) {
        if (truth.count(retrieved[i].id))
            ++found;
    }
    return static_cast<double>(found) / static_cast<double>(truth.size());
}

double
ndcgAtK(const vecstore::HitList &retrieved,
        const vecstore::HitList &ground_truth, std::size_t k)
{
    HERMES_ASSERT(k > 0, "NDCG@k needs k > 0");
    const std::size_t gt = std::min(k, ground_truth.size());
    if (gt == 0)
        return 0.0;

    // Graded relevance: best ground-truth hit carries relevance gt, the
    // next gt-1, etc.
    std::unordered_map<vecstore::VecId, double> relevance;
    double ideal = 0.0;
    for (std::size_t r = 0; r < gt; ++r) {
        double rel = static_cast<double>(gt - r);
        relevance[ground_truth[r].id] = rel;
        ideal += rel / std::log2(static_cast<double>(r) + 2.0);
    }

    double dcg = 0.0;
    for (std::size_t i = 0; i < std::min(k, retrieved.size()); ++i) {
        auto it = relevance.find(retrieved[i].id);
        if (it != relevance.end())
            dcg += it->second / std::log2(static_cast<double>(i) + 2.0);
    }
    return dcg / ideal;
}

double
meanRecallAtK(const std::vector<vecstore::HitList> &retrieved,
              const std::vector<vecstore::HitList> &ground_truth,
              std::size_t k)
{
    HERMES_ASSERT(retrieved.size() == ground_truth.size(),
                  "metric: query count mismatch");
    if (retrieved.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t q = 0; q < retrieved.size(); ++q)
        acc += recallAtK(retrieved[q], ground_truth[q], k);
    return acc / static_cast<double>(retrieved.size());
}

double
meanNdcgAtK(const std::vector<vecstore::HitList> &retrieved,
            const std::vector<vecstore::HitList> &ground_truth,
            std::size_t k)
{
    HERMES_ASSERT(retrieved.size() == ground_truth.size(),
                  "metric: query count mismatch");
    if (retrieved.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t q = 0; q < retrieved.size(); ++q)
        acc += ndcgAtK(retrieved[q], ground_truth[q], k);
    return acc / static_cast<double>(retrieved.size());
}

} // namespace eval
} // namespace hermes
