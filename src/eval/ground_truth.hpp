/**
 * @file
 * Exhaustive-search ground truth (the paper's NDCG reference).
 */

#pragma once

#include <vector>

#include "vecstore/matrix.hpp"
#include "vecstore/types.hpp"

namespace hermes {
namespace eval {

/**
 * Exact top-k neighbors for every query by brute-force search.
 *
 * @param base    Datastore embeddings (external id = row index).
 * @param queries Query embeddings.
 * @param k       Neighbors per query.
 * @param metric  Distance metric.
 * @return One best-first hit list per query.
 */
std::vector<vecstore::HitList>
exactGroundTruth(const vecstore::Matrix &base,
                 const vecstore::Matrix &queries, std::size_t k,
                 vecstore::Metric metric);

} // namespace eval
} // namespace hermes
