#include "eval/ground_truth.hpp"

#include "index/flat_index.hpp"
#include "util/logging.hpp"

namespace hermes {
namespace eval {

std::vector<vecstore::HitList>
exactGroundTruth(const vecstore::Matrix &base,
                 const vecstore::Matrix &queries, std::size_t k,
                 vecstore::Metric metric)
{
    HERMES_ASSERT(base.dim() == queries.dim(),
                  "ground truth: dim mismatch");
    index::FlatIndex flat(base.dim(), metric);
    flat.addSequential(base);
    return flat.searchBatch(queries, k);
}

} // namespace eval
} // namespace hermes
