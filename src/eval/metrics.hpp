/**
 * @file
 * Retrieval quality metrics (paper §5).
 *
 * The paper scores retrieval with Normalized Discounted Cumulative Gain
 * against an exhaustive brute-force ground truth, plus recall for the
 * quantization study (Table 1).
 */

#pragma once

#include <vector>

#include "vecstore/types.hpp"

namespace hermes {
namespace eval {

/**
 * recall@k: fraction of ground-truth top-k ids present in the retrieved
 * list (order-insensitive).
 */
double recallAtK(const vecstore::HitList &retrieved,
                 const vecstore::HitList &ground_truth, std::size_t k);

/**
 * NDCG@k with graded relevance derived from the ground-truth ranking:
 * the r-th ground-truth result carries relevance (k - r), so both the
 * presence and the ordering of retrieved documents are rewarded.
 */
double ndcgAtK(const vecstore::HitList &retrieved,
               const vecstore::HitList &ground_truth, std::size_t k);

/** Mean recall@k over a query set. */
double meanRecallAtK(const std::vector<vecstore::HitList> &retrieved,
                     const std::vector<vecstore::HitList> &ground_truth,
                     std::size_t k);

/** Mean NDCG@k over a query set. */
double meanNdcgAtK(const std::vector<vecstore::HitList> &retrieved,
                   const std::vector<vecstore::HitList> &ground_truth,
                   std::size_t k);

} // namespace eval
} // namespace hermes
