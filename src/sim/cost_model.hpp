/**
 * @file
 * Analytic latency/energy cost models for retrieval nodes and inference
 * GPUs, calibrated to the paper's reported single-node measurements
 * (DESIGN.md §4). These replace the measured lookup tables of the paper's
 * multi-node analysis tool (Fig 15) with closed-form equivalents.
 */

#pragma once

#include <cstddef>

#include "sim/hardware.hpp"

namespace hermes {
namespace sim {

/**
 * Shape of an at-scale IVF datastore, in the paper's units.
 *
 * The coarse quantizer is capped at kMaxNlist centroids: training K-means
 * beyond ~10^4 centroids on billions of vectors is impractical, and the
 * cap reproduces the linear latency-vs-size scaling the paper measures
 * (Fig 6/7).
 */
struct DatastoreGeometry
{
    /** Datastore size in tokens (paper sweeps 100M..1T). */
    double tokens = 10e9;

    /** Tokens represented by one chunk/vector (paper: ~100). */
    double tokens_per_chunk = 100.0;

    /** Embedding dimensionality (BGE-large: 768 after projection). */
    std::size_t dim = 768;

    /** Bytes per stored code (SQ8: dim bytes). */
    std::size_t code_bytes = 768;

    /** Coarse-quantizer size cap. */
    static constexpr std::size_t kMaxNlist = 10000;

    /** Number of stored vectors. */
    double numVectors() const { return tokens / tokens_per_chunk; }

    /** Effective nlist: min(sqrt(N), kMaxNlist). */
    std::size_t nlist() const;

    /** Index memory footprint in bytes (codes + ids + centroids). */
    double indexBytes() const;

    /** Geometry of one of @p n equal similarity clusters. */
    DatastoreGeometry split(std::size_t n) const;
};

/** Latency/energy model for IVF retrieval on a CPU node. */
class RetrievalCostModel
{
  public:
    explicit RetrievalCostModel(const CpuProfile &cpu) : cpu_(cpu) {}

    const CpuProfile &cpu() const { return cpu_; }

    /** Bytes one query scans: centroid table + probed list codes. */
    double queryScanBytes(const DatastoreGeometry &geo,
                          std::size_t nprobe) const;

    /**
     * Single-query latency on one core.
     * @param scan_bytes Bytes scanned.
     * @param freq_frac  DVFS operating point as a fraction of max freq.
     */
    double queryLatency(double scan_bytes, double freq_frac = 1.0) const;

    /**
     * Batch latency with FAISS-style one-thread-per-query work stealing:
     * ceil(batch / cores) waves of per-query latency.
     *
     * @param intra_query_parallel When the node has more cores than
     *        queries, split each query's probed lists across the idle
     *        cores (FAISS does this on underloaded nodes). Speedup is
     *        capped at kIntraQueryMaxSpeedup with kIntraQueryEff
     *        marginal efficiency.
     */
    double batchLatency(const DatastoreGeometry &geo, std::size_t nprobe,
                        std::size_t batch, double freq_frac = 1.0,
                        bool intra_query_parallel = false) const;

    /** Max useful threads per single query (list-level granularity). */
    static constexpr double kIntraQueryMaxSpeedup = 4.0;

    /** Marginal efficiency of each extra intra-query thread. */
    static constexpr double kIntraQueryEff = 0.8;

    /**
     * Package power at the given utilization and DVFS point.
     * P = idle + (tdp - idle) * util * freq_frac^3 (CMOS dynamic power).
     */
    double power(double utilization, double freq_frac = 1.0) const;

    /** Energy of a busy interval. */
    double
    energy(double seconds, double utilization, double freq_frac = 1.0) const
    {
        return seconds * power(utilization, freq_frac);
    }

    /** Steady-state throughput in queries/second for a batch size. */
    double throughputQps(const DatastoreGeometry &geo, std::size_t nprobe,
                         std::size_t batch) const;

  private:
    CpuProfile cpu_;
};

/** Latency/energy model for LLM serving on one or more GPUs. */
class LlmCostModel
{
  public:
    /**
     * @param model    The LLM (or encoder) being served.
     * @param gpu      GPU type.
     * @param num_gpus Tensor-parallel degree; 0 = minimum that fits.
     */
    LlmCostModel(LlmModel model, GpuModel gpu, std::size_t num_gpus = 0);

    const LlmProfile &model() const { return model_; }
    const GpuProfile &gpu() const { return gpu_; }
    std::size_t numGpus() const { return num_gpus_; }

    /**
     * Prefill latency: compute-bound on tensor cores.
     * @param batch  Queries in the batch.
     * @param tokens Tokens prefilled per query.
     */
    double prefillLatency(std::size_t batch, std::size_t tokens) const;

    /**
     * Decode latency: bandwidth-bound parameter streaming per step.
     * @param batch  Queries decoded together.
     * @param tokens Tokens generated per query.
     */
    double decodeLatency(std::size_t batch, std::size_t tokens) const;

    /** Encoder forward pass = prefill of the query tokens. */
    double
    encodeLatency(std::size_t batch, std::size_t tokens) const
    {
        return prefillLatency(batch, tokens);
    }

    /** Energy for @p seconds of busy GPU time (all TP ranks). */
    double busyEnergy(double seconds) const;

    /** Energy for @p seconds of idle GPU time (all TP ranks). */
    double idleEnergy(double seconds) const;

    /**
     * Effective tensor throughput multiplier over the quoted TFLOPS
     * figure (FP16 tensor cores vs the headline spec), calibrated so
     * Gemma2-9B/A6000 matches the paper's prefill latency.
     */
    static constexpr double kTensorCoreFactor = 9.5;

    /** Achievable fraction of peak memory bandwidth during decode. */
    static constexpr double kDecodeBwEff = 0.62;

    /** Marginal efficiency of each extra tensor-parallel GPU. */
    static constexpr double kTpEff = 0.70;

  private:
    /** Aggregate scaling factor from tensor parallelism. */
    double tpFactor() const;

    LlmProfile model_;
    GpuProfile gpu_;
    std::size_t num_gpus_;
};

} // namespace sim
} // namespace hermes
