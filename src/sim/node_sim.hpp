/**
 * @file
 * Multi-node aggregation tool (paper §5 "Multi-Node Analysis", Fig 15).
 *
 * Replays a cluster-access trace (which clusters each query deep-searches)
 * against per-node cost models to estimate batch latency, throughput and
 * energy of a distributed Hermes deployment, including the DVFS policies
 * of Fig 21.
 */

#pragma once

#include <vector>

#include "sim/cost_model.hpp"
#include "workload/trace.hpp"

namespace hermes {
namespace sim {

/** Per-batch DVFS policy (paper §4.2 / Fig 21). */
enum class DvfsPolicy {
    /** All nodes at max frequency. */
    None,
    /**
     * Baseline DVFS: lightly-loaded nodes slow down so they finish with
     * the slowest cluster of the batch (no latency cost).
     */
    SlowestCluster,
    /**
     * Enhanced DVFS: retrieval is pipelined with inference, so nodes may
     * slow all the way down to the inference-stage latency.
     */
    MatchInference,
};

/** Human-readable policy name. */
const char *dvfsPolicyName(DvfsPolicy policy);

/** Deployment description for the simulator. */
struct MultiNodeConfig
{
    /** Geometry of the *whole* datastore. */
    DatastoreGeometry total;

    /** Number of cluster nodes. */
    std::size_t num_clusters = 10;

    /**
     * Relative token share of each cluster (empty = even split). Feed the
     * measured partition sizes here to model K-means imbalance.
     */
    std::vector<double> cluster_shares;

    /** Sampling-pass nProbe (0 disables the sampling phase — naive split
     *  and monolithic deployments have none). */
    std::size_t sample_nprobe = 8;

    /** Deep-search nProbe. */
    std::size_t deep_nprobe = 128;

    /** Queries per batch. */
    std::size_t batch = 128;

    /** Retrieval node CPU. */
    CpuModel cpu = CpuModel::XeonGold6448Y;

    /** DVFS policy. */
    DvfsPolicy dvfs = DvfsPolicy::None;

    /**
     * Let underloaded nodes split a query's probed lists across idle
     * cores (FAISS behaviour; used by the Fig 20 platform study).
     */
    bool intra_query_parallelism = false;

    /**
     * Inference-stage latency target for DvfsPolicy::MatchInference
     * (seconds per batch).
     */
    double inference_latency = 0.0;
};

/** Result of simulating one query batch. */
struct BatchResult
{
    /** Sampling-phase latency (max over nodes). */
    double sample_latency = 0.0;

    /** Deep-phase latency (max over nodes). */
    double deep_latency = 0.0;

    /** Total retrieval latency for the batch. */
    double latency = 0.0;

    /** CPU energy over the batch window across all nodes (J). */
    double energy = 0.0;

    /** Steady-state throughput (queries/s). */
    double throughput_qps = 0.0;

    /** Deep-phase busy seconds per node (at the chosen frequency). */
    std::vector<double> node_busy;

    /** Deep-phase frequency fraction per node. */
    std::vector<double> node_freq;

    /** Deep accesses per node. */
    std::vector<std::size_t> node_queries;
};

/** Multi-node deployment simulator. */
class MultiNodeSimulator
{
  public:
    explicit MultiNodeSimulator(const MultiNodeConfig &config);

    const MultiNodeConfig &config() const { return config_; }

    /** Geometry of cluster @p c after applying cluster_shares. */
    DatastoreGeometry clusterGeometry(std::size_t c) const;

    /**
     * Simulate one batch given each query's deep-searched clusters.
     * @param accesses accesses[q] = clusters deep-searched by query q.
     */
    BatchResult simulateBatch(
        const std::vector<std::vector<std::uint32_t>> &accesses) const;

    /**
     * Simulate a batch where every query deep-searches
     * @p clusters_per_query nodes, spread round-robin (the even-load
     * idealization used for naive-split comparisons).
     */
    BatchResult simulateUniformBatch(std::size_t clusters_per_query) const;

    /**
     * Replay a measured trace batch-by-batch; returns the mean result
     * (latencies/energies averaged, throughput recomputed).
     */
    BatchResult replayTrace(const workload::ClusterTrace &trace) const;

  private:
    /** Deep-phase busy time of node @p c with @p queries at max freq. */
    double nodeDeepTime(std::size_t c, std::size_t queries) const;

    MultiNodeConfig config_;
    RetrievalCostModel cost_;
};

} // namespace sim
} // namespace hermes
