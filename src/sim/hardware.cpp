#include "sim/hardware.hpp"

#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace hermes {
namespace sim {

namespace {

const CpuProfile kXeonGold6448Y = {
    .name = "Xeon Gold 6448Y",
    .cores = 32,
    .max_freq_ghz = 2.3,
    .min_freq_ghz = 0.8,
    .tdp_watts = 300.0,
    .idle_watts = 75.0,
    .scan_gbps_per_core = 1.75,
    .mem_gb = 512.0,
};

const CpuProfile kXeonPlatinum8380 = {
    .name = "Xeon Platinum 8380",
    .cores = 40,
    .max_freq_ghz = 2.3,
    .min_freq_ghz = 0.8,
    .tdp_watts = 270.0,
    .idle_watts = 70.0,
    .scan_gbps_per_core = 2.10,
    .mem_gb = 512.0,
};

const CpuProfile kXeonSilver4316 = {
    .name = "Xeon Silver 4316",
    .cores = 20,
    .max_freq_ghz = 2.3,
    .min_freq_ghz = 0.8,
    .tdp_watts = 150.0,
    .idle_watts = 45.0,
    .scan_gbps_per_core = 1.40,
    .mem_gb = 256.0,
};

const CpuProfile kNeoverseN1 = {
    .name = "Neoverse-N1",
    .cores = 80,
    .max_freq_ghz = 3.0,
    .min_freq_ghz = 1.0,
    .tdp_watts = 250.0,
    .idle_watts = 60.0,
    .scan_gbps_per_core = 0.70,
    .mem_gb = 512.0,
};

const GpuProfile kA6000Ada = {
    .name = "A6000 Ada",
    .peak_tflops = 91.0,
    .mem_bw_gbps = 960.0,
    .tdp_watts = 300.0,
    .idle_watts = 22.0,
    .mem_gb = 48.0,
};

const GpuProfile kL4 = {
    .name = "L4",
    .peak_tflops = 31.0,
    .mem_bw_gbps = 300.0,
    .tdp_watts = 140.0,
    .idle_watts = 12.0,
    .mem_gb = 24.0,
};

const LlmProfile kBgeLarge = {
    .name = "BGE-Large", .params_b = 0.335, .bytes_per_param = 2.0,
    .retrieval_augmented = false, .kv_bytes_per_token = 0.0,
};
const LlmProfile kPhi15 = {
    .name = "Phi-1.5 (1.3B)", .params_b = 1.3, .bytes_per_param = 2.0,
    .retrieval_augmented = false, .kv_bytes_per_token = 196e3,
};
const LlmProfile kGemma2_9B = {
    .name = "Gemma2 (9B)", .params_b = 9.0, .bytes_per_param = 2.0,
    .retrieval_augmented = false, .kv_bytes_per_token = 256e3,
};
const LlmProfile kOpt30B = {
    .name = "OPT (30B)", .params_b = 30.0, .bytes_per_param = 2.0,
    .retrieval_augmented = false, .kv_bytes_per_token = 1.38e6,
};
const LlmProfile kGpt2_762M = {
    .name = "GPT-2 762M", .params_b = 0.762, .bytes_per_param = 2.0,
    .retrieval_augmented = false, .kv_bytes_per_token = 148e3,
};
const LlmProfile kGpt2_1_5B = {
    .name = "GPT-2 1.5B", .params_b = 1.5, .bytes_per_param = 2.0,
    .retrieval_augmented = false, .kv_bytes_per_token = 230e3,
};
const LlmProfile kRetro578M = {
    .name = "RETRO 578M", .params_b = 0.578, .bytes_per_param = 2.0,
    .retrieval_augmented = true, .kv_bytes_per_token = 128e3,
};

} // namespace

const CpuProfile &
cpuProfile(CpuModel model)
{
    switch (model) {
      case CpuModel::XeonGold6448Y:    return kXeonGold6448Y;
      case CpuModel::XeonPlatinum8380: return kXeonPlatinum8380;
      case CpuModel::XeonSilver4316:   return kXeonSilver4316;
      case CpuModel::NeoverseN1:       return kNeoverseN1;
    }
    HERMES_PANIC("unknown CPU model");
}

const GpuProfile &
gpuProfile(GpuModel model)
{
    switch (model) {
      case GpuModel::A6000Ada: return kA6000Ada;
      case GpuModel::L4:       return kL4;
    }
    HERMES_PANIC("unknown GPU model");
}

std::vector<CpuModel>
allCpuModels()
{
    return {CpuModel::NeoverseN1, CpuModel::XeonGold6448Y,
            CpuModel::XeonPlatinum8380, CpuModel::XeonSilver4316};
}

std::vector<GpuModel>
allGpuModels()
{
    return {GpuModel::A6000Ada, GpuModel::L4};
}

std::size_t
LlmProfile::minGpus(const GpuProfile &gpu) const
{
    // Parameters plus ~35% headroom for KV cache and activations.
    double needed_gb = paramBytes() * 1.35 / 1e9;
    auto gpus = static_cast<std::size_t>(
        std::ceil(needed_gb / gpu.mem_gb));
    return gpus == 0 ? 1 : gpus;
}

std::size_t
LlmProfile::maxBatch(const GpuProfile &gpu, std::size_t num_gpus,
                     std::size_t context_tokens) const
{
    HERMES_ASSERT(num_gpus >= 1, "need at least one GPU");
    double total_gb = gpu.mem_gb * static_cast<double>(num_gpus);
    // Weights plus ~15% activation/workspace headroom.
    double free_bytes = total_gb * 1e9 - paramBytes() * 1.15;
    if (free_bytes <= 0.0)
        return 0;
    if (kv_bytes_per_token <= 0.0 || context_tokens == 0)
        return std::numeric_limits<std::size_t>::max();
    double per_seq = kv_bytes_per_token *
                     static_cast<double>(context_tokens);
    return static_cast<std::size_t>(free_bytes / per_seq);
}

const LlmProfile &
llmProfile(LlmModel model)
{
    switch (model) {
      case LlmModel::BgeLarge:  return kBgeLarge;
      case LlmModel::Phi15:     return kPhi15;
      case LlmModel::Gemma2_9B: return kGemma2_9B;
      case LlmModel::Opt30B:    return kOpt30B;
      case LlmModel::Gpt2_762M: return kGpt2_762M;
      case LlmModel::Gpt2_1_5B: return kGpt2_1_5B;
      case LlmModel::Retro578M: return kRetro578M;
    }
    HERMES_PANIC("unknown LLM model");
}

} // namespace sim
} // namespace hermes
