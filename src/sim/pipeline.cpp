#include "sim/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace hermes {
namespace sim {

const char *
retrievalModeName(RetrievalMode mode)
{
    switch (mode) {
      case RetrievalMode::Monolithic: return "monolithic";
      case RetrievalMode::NaiveSplit: return "naive-split";
      case RetrievalMode::Hermes:     return "hermes";
    }
    return "?";
}

RagPipelineSim::RagPipelineSim(const PipelineConfig &config)
    : config_(config),
      llm_(config.model, config.gpu, config.num_gpus),
      encoder_(LlmModel::BgeLarge, config.gpu, 1),
      cpu_cost_(cpuProfile(config.cpu))
{
    HERMES_ASSERT(config_.stride >= 1, "stride must be >= 1");
    HERMES_ASSERT(config_.output_tokens >= config_.stride,
                  "output shorter than one stride");
}

std::size_t
RagPipelineSim::numRetrievalNodes() const
{
    return config_.retrieval == RetrievalMode::Monolithic
        ? 1 : config_.num_clusters;
}

double
RagPipelineSim::retrievalLatency() const
{
    switch (config_.retrieval) {
      case RetrievalMode::Monolithic:
        return cpu_cost_.batchLatency(config_.datastore,
                                      config_.deep_nprobe, config_.batch);
      case RetrievalMode::NaiveSplit: {
        MultiNodeConfig mn;
        mn.total = config_.datastore;
        mn.num_clusters = config_.num_clusters;
        mn.sample_nprobe = 0;
        mn.deep_nprobe = config_.deep_nprobe;
        mn.batch = config_.batch;
        mn.cpu = config_.cpu;
        MultiNodeSimulator sim(mn);
        return sim.simulateUniformBatch(config_.num_clusters).latency;
      }
      case RetrievalMode::Hermes: {
        MultiNodeConfig mn;
        mn.total = config_.datastore;
        mn.num_clusters = config_.num_clusters;
        mn.sample_nprobe = config_.sample_nprobe;
        mn.deep_nprobe = config_.deep_nprobe;
        mn.batch = config_.batch;
        mn.cpu = config_.cpu;
        MultiNodeSimulator sim(mn);
        return sim.simulateUniformBatch(config_.clusters_to_search).latency;
      }
    }
    HERMES_PANIC("unknown retrieval mode");
}

double
RagPipelineSim::strideInferenceWindow() const
{
    // Steady per-stride inference time without caching: re-prefill of the
    // context-enhanced query plus decoding one stride. This is both the
    // enhanced-DVFS slowdown target (Fig 21) and the window retrieval can
    // hide under when pipelined (Fig 10/19).
    return llm_.prefillLatency(config_.batch, config_.input_tokens) +
           llm_.decodeLatency(config_.batch, config_.stride);
}

double
RagPipelineSim::retrievalEnergy() const
{
    // The pipelined-inference window is charged to the retrieval nodes
    // only under enhanced DVFS, where stretching into that window is the
    // mechanism being modeled (Fig 21); otherwise energy covers the
    // retrieval window alone, matching the paper's per-stage RAPL
    // measurements.
    const double inference_window =
        config_.dvfs == DvfsPolicy::MatchInference
            ? strideInferenceWindow() : 0.0;
    switch (config_.retrieval) {
      case RetrievalMode::Monolithic: {
        double t = retrievalLatency();
        double window = std::max(t, inference_window);
        return cpu_cost_.energy(t, 1.0, 1.0) +
               cpu_cost_.energy(window - t, 0.0);
      }
      case RetrievalMode::NaiveSplit: {
        MultiNodeConfig mn;
        mn.total = config_.datastore;
        mn.num_clusters = config_.num_clusters;
        mn.sample_nprobe = 0;
        mn.deep_nprobe = config_.deep_nprobe;
        mn.batch = config_.batch;
        mn.cpu = config_.cpu;
        mn.dvfs = config_.dvfs;
        mn.inference_latency = inference_window;
        MultiNodeSimulator sim(mn);
        return sim.simulateUniformBatch(config_.num_clusters).energy;
      }
      case RetrievalMode::Hermes: {
        MultiNodeConfig mn;
        mn.total = config_.datastore;
        mn.num_clusters = config_.num_clusters;
        mn.sample_nprobe = config_.sample_nprobe;
        mn.deep_nprobe = config_.deep_nprobe;
        mn.batch = config_.batch;
        mn.cpu = config_.cpu;
        mn.dvfs = config_.dvfs;
        mn.inference_latency = inference_window;
        MultiNodeSimulator sim(mn);
        return sim.simulateUniformBatch(config_.clusters_to_search).energy;
      }
    }
    HERMES_PANIC("unknown retrieval mode");
}

PipelineResult
RagPipelineSim::run() const
{
    PipelineResult result;
    result.num_strides = config_.output_tokens / config_.stride;
    HERMES_ASSERT(result.num_strides >= 1, "no strides to run");

    const double t_enc =
        encoder_.encodeLatency(config_.batch, config_.input_tokens);
    const double t_retr = retrievalLatency();
    const double e_retr = retrievalEnergy();

    // Full prefill of the context-enhanced query.
    const double t_prefill_full =
        llm_.prefillLatency(config_.batch, config_.input_tokens);
    // With RAGCache document KV caching, later strides prefill only the
    // tokens generated since the previous retrieval on a cache hit, and
    // pay the full prefill on a miss (the paper assumes hit rate 1.0).
    HERMES_ASSERT(config_.cache_hit_rate >= 0.0 &&
                  config_.cache_hit_rate <= 1.0,
                  "cache_hit_rate must be in [0, 1]");
    const double t_prefill_cached =
        llm_.prefillLatency(config_.batch, config_.stride);
    const double t_prefill_stride = config_.prefix_caching
        ? config_.cache_hit_rate * t_prefill_cached +
              (1.0 - config_.cache_hit_rate) * t_prefill_full
        : t_prefill_full;
    const double t_decode_stride =
        llm_.decodeLatency(config_.batch, config_.stride);

    result.retrieval_per_stride = t_retr;
    result.inference_per_stride = t_prefill_stride + t_decode_stride;

    // Unoverlapped stage totals (Fig 6-style breakdown bars).
    const auto strides = static_cast<double>(result.num_strides);
    result.stage.encode = t_enc * strides;
    result.stage.retrieval = t_retr * strides;
    result.stage.prefill =
        t_prefill_full + t_prefill_stride * (strides - 1.0);
    result.stage.decode = t_decode_stride * strides;

    // TTFT: encode + first retrieval + full prefill; no optimization can
    // overlap the *first* retrieval (paper Takeaway 2, Fig 16).
    result.ttft = t_enc + t_retr + t_prefill_full;

    const double steady_work =
        t_enc + t_retr + t_prefill_stride + t_decode_stride;
    if (config_.pipelining) {
        // PipeRAG: the (i+1)-th retrieval (with a slightly stale query)
        // overlaps the i-th stride's inference; each steady stride costs
        // the slower of the two pipelines.
        double steady = std::max(t_enc + t_retr,
                                 t_prefill_stride + t_decode_stride);
        result.e2e = result.ttft + t_decode_stride +
                     (strides - 1.0) * steady;
    } else {
        result.e2e = result.ttft + t_decode_stride +
                     (strides - 1.0) * steady_work;
    }

    // Energy. GPU: busy for encode + prefill + decode work, idle rest.
    double gpu_busy = result.stage.encode + result.stage.prefill +
                      result.stage.decode;
    gpu_busy = std::min(gpu_busy, result.e2e);
    result.gpu_energy = llm_.busyEnergy(gpu_busy) +
                        llm_.idleEnergy(result.e2e - gpu_busy) +
                        encoder_.idleEnergy(0.0);

    // CPU: per-stride retrieval energy. The node simulator already
    // charges within-window idling (nodes waiting for the slowest
    // cluster, or for the pipelined inference stage); matching the
    // paper's RAPL methodology, energy outside the serving windows is
    // not attributed to the pipeline.
    result.cpu_energy = e_retr * strides;

    result.throughput_qps =
        static_cast<double>(config_.batch) / result.e2e;
    return result;
}

double
RagPipelineSim::optimalClusterTokens(const PipelineConfig &config)
{
    // Largest cluster whose deep-search batch latency fits inside the
    // per-stride inference window (re-prefill of the enhanced query plus
    // decoding one stride) so a pipelined deployment fully hides retrieval
    // (Fig 10 right, Fig 19). Longer input contexts widen the window and
    // therefore permit larger clusters / fewer retrieval nodes.
    LlmCostModel llm(config.model, config.gpu, config.num_gpus);
    std::size_t stride = std::min(config.stride, config.output_tokens);
    double window =
        llm.prefillLatency(config.batch, config.input_tokens) +
        llm.decodeLatency(config.batch, stride);

    RetrievalCostModel cpu(cpuProfile(config.cpu));
    double waves = std::ceil(static_cast<double>(config.batch) /
                             static_cast<double>(cpuProfile(
                                 config.cpu).cores));
    double per_query_budget = window / waves;
    double budget_bytes =
        per_query_budget * cpu.cpu().scan_gbps_per_core * 1e9;

    // Invert queryScanBytes under the capped-nlist regime (nlist = 10k):
    // bytes = nlist*dim*4 + nprobe/nlist * N * code.
    DatastoreGeometry geo = config.datastore;
    double nlist = static_cast<double>(DatastoreGeometry::kMaxNlist);
    double centroid_bytes = nlist * geo.dim * 4.0;
    double probe_frac =
        static_cast<double>(config.deep_nprobe) / nlist;
    double vectors =
        std::max(0.0, (budget_bytes - centroid_bytes) /
                          (probe_frac * geo.code_bytes));
    return vectors * geo.tokens_per_chunk;
}

} // namespace sim
} // namespace hermes
