/**
 * @file
 * End-to-end RAG pipeline simulator.
 *
 * Models the four-stage strided-generation loop of Fig 3 — encode,
 * retrieve, prefill, decode — under every serving policy the paper
 * compares: the unoptimized baseline, PipeRAG-style retrieval/inference
 * pipelining, RAGCache-style prefill caching (ideal 100% KV hit, §3), the
 * Hermes distributed retriever, and their combinations (Fig 14).
 */

#pragma once

#include "sim/node_sim.hpp"

namespace hermes {
namespace sim {

/** Retrieval serving arrangement. */
enum class RetrievalMode {
    Monolithic, ///< One big index on one node (baseline).
    NaiveSplit, ///< N nodes, all searched per query.
    Hermes,     ///< N nodes, hierarchical sample + deep search.
};

/** Human-readable mode name. */
const char *retrievalModeName(RetrievalMode mode);

/** Full pipeline configuration. */
struct PipelineConfig
{
    /** Whole-datastore geometry. */
    DatastoreGeometry datastore;

    /** Queries per batch (paper default: 128; Fig 6 uses 32). */
    std::size_t batch = 128;

    /** Input prompt length in tokens (paper: 512). */
    std::size_t input_tokens = 512;

    /** Generated output length in tokens (paper: 256). */
    std::size_t output_tokens = 256;

    /** Retrieval stride in tokens (paper: 16). */
    std::size_t stride = 16;

    /** Inference model and GPU. */
    LlmModel model = LlmModel::Gemma2_9B;
    GpuModel gpu = GpuModel::A6000Ada;

    /** Tensor-parallel degree (0 = minimum that fits). */
    std::size_t num_gpus = 0;

    /** Retrieval node CPU. */
    CpuModel cpu = CpuModel::XeonGold6448Y;

    /** Retrieval serving arrangement. */
    RetrievalMode retrieval = RetrievalMode::Monolithic;

    /** Hermes / split parameters (ignored for Monolithic). */
    std::size_t num_clusters = 10;
    std::size_t sample_nprobe = 8;
    std::size_t deep_nprobe = 128;
    std::size_t clusters_to_search = 3;
    DvfsPolicy dvfs = DvfsPolicy::None;

    /** PipeRAG-style overlap of retrieval with the previous stride. */
    bool pipelining = false;

    /** RAGCache-style document-KV caching. */
    bool prefix_caching = false;

    /**
     * KV-cache hit rate under prefix_caching. The paper assumes the
     * ideal 100% (see its §3 RAGCache description); real document-reuse
     * rates across strides are lower — measure them with
     * rag::strideOverlap and sweep this knob (ablation bench).
     */
    double cache_hit_rate = 1.0;
};

/** Per-stage latency totals across the whole generation. */
struct StageBreakdown
{
    double encode = 0.0;
    double retrieval = 0.0;
    double prefill = 0.0;
    double decode = 0.0;

    double
    total() const
    {
        return encode + retrieval + prefill + decode;
    }
};

/** Result of one pipeline simulation. */
struct PipelineResult
{
    /** Time to first token for the batch (s). */
    double ttft = 0.0;

    /** End-to-end latency for the batch (s). */
    double e2e = 0.0;

    /** Stage latency totals (unoverlapped sums, for breakdown plots). */
    StageBreakdown stage;

    /** Retrieval latency per stride (s). */
    double retrieval_per_stride = 0.0;

    /** Per-stride inference window (prefill-after-cache + decode). */
    double inference_per_stride = 0.0;

    /** Number of retrieval strides executed. */
    std::size_t num_strides = 0;

    /** CPU retrieval energy incl. idle nodes (J). */
    double cpu_energy = 0.0;

    /** GPU inference energy incl. idle time (J). */
    double gpu_energy = 0.0;

    double totalEnergy() const { return cpu_energy + gpu_energy; }

    /** Batch throughput = batch / e2e (queries/s). */
    double throughput_qps = 0.0;
};

/** End-to-end RAG pipeline simulator. */
class RagPipelineSim
{
  public:
    explicit RagPipelineSim(const PipelineConfig &config);

    const PipelineConfig &config() const { return config_; }

    /** Run the simulation. */
    PipelineResult run() const;

    /** Retrieval latency for one batch-stride (s). */
    double retrievalLatency() const;

    /** Retrieval CPU energy for one batch-stride (J). */
    double retrievalEnergy() const;

    /** Number of retrieval nodes in this deployment. */
    std::size_t numRetrievalNodes() const;

    /**
     * Largest per-cluster datastore (tokens) whose deep-search latency
     * still hides under the per-stride inference window — the Fig 19
     * cluster-sizing rule.
     */
    static double optimalClusterTokens(const PipelineConfig &config);

  private:
    /** Steady per-stride inference time (uncached prefill + decode). */
    double strideInferenceWindow() const;

    PipelineConfig config_;
    LlmCostModel llm_;
    LlmCostModel encoder_;
    RetrievalCostModel cpu_cost_;
};

} // namespace sim
} // namespace hermes
