/**
 * @file
 * Hardware profiles for the multi-node analysis tool (paper §5, Fig 15).
 *
 * The paper measures per-node latency/power on real Intel/ARM CPUs and
 * NVIDIA GPUs and aggregates lookup tables into at-scale estimates. We
 * replace the measured tables with analytic profiles calibrated to the
 * paper's reported single-node numbers (see DESIGN.md §4); the aggregation
 * logic is the same.
 */

#pragma once

#include <string>
#include <vector>

namespace hermes {
namespace sim {

/** CPU platforms evaluated in the paper (Fig 20). */
enum class CpuModel {
    XeonGold6448Y,   ///< 32 cores; the paper's default retrieval node.
    XeonPlatinum8380,///< 40 cores; best latency/throughput in Fig 20.
    XeonSilver4316,  ///< 20 cores; budget option.
    NeoverseN1,      ///< 80-core ARM; slower cores, wins via batch size.
};

/** GPU platforms evaluated in the paper (Fig 17). */
enum class GpuModel {
    A6000Ada, ///< 91 TFLOPS @ 300 W (paper's numbers).
    L4,       ///< 31 TFLOPS @ 140 W.
};

/** A retrieval node's CPU characteristics. */
struct CpuProfile
{
    std::string name;

    /** Physical cores available to FAISS-style one-thread-per-query. */
    std::size_t cores = 32;

    /** Nominal (max) core frequency in GHz. */
    double max_freq_ghz = 2.3;

    /** Lowest DVFS operating point in GHz. */
    double min_freq_ghz = 0.8;

    /** Package power at max frequency, all cores busy (W). */
    double tdp_watts = 300.0;

    /** Package power when idle (W). */
    double idle_watts = 75.0;

    /**
     * Effective IVF code-scan throughput per core at max frequency
     * (GB/s): covers SQ8 decode + distance arithmetic. Calibrated so a
     * 32-core Xeon Gold matches the paper's 10B/100B retrieval latency.
     */
    double scan_gbps_per_core = 1.75;

    /** DRAM capacity (GB) — bounds the index a single node can host. */
    double mem_gb = 512.0;
};

/** An inference accelerator's characteristics. */
struct GpuProfile
{
    std::string name;

    /** Headline compute (TFLOPS) as quoted by the paper. */
    double peak_tflops = 91.0;

    /** HBM/GDDR bandwidth (GB/s) — decode is bandwidth-bound. */
    double mem_bw_gbps = 960.0;

    /** Board power when busy (W). */
    double tdp_watts = 300.0;

    /** Board power when idle (W). */
    double idle_watts = 20.0;

    /** Memory capacity (GB) — determines tensor-parallel degree. */
    double mem_gb = 48.0;
};

/** Profile registry lookup. */
const CpuProfile &cpuProfile(CpuModel model);
const GpuProfile &gpuProfile(GpuModel model);

/** All CPU models, in Fig 20 order. */
std::vector<CpuModel> allCpuModels();

/** All GPU models, in Fig 17 order. */
std::vector<GpuModel> allGpuModels();

/**
 * LLM / encoder architectures evaluated in the paper (§5 and Fig 5):
 * inference models plus the BGE encoder and the Fig 5 perplexity models.
 */
enum class LlmModel {
    BgeLarge,   ///< 0.335B encoder (bge-large-en).
    Phi15,      ///< 1.3B.
    Gemma2_9B,  ///< 9B; the paper's default.
    Opt30B,     ///< 30B; needs tensor parallelism.
    Gpt2_762M,  ///< Fig 5 perplexity reference.
    Gpt2_1_5B,  ///< Fig 5 perplexity reference.
    Retro578M,  ///< Fig 5 retrieval-augmented reference.
};

/** An LLM's cost-model-relevant attributes. */
struct LlmProfile
{
    std::string name;

    /** Parameter count (billions). */
    double params_b = 9.0;

    /** Bytes per parameter under FP16 serving. */
    double bytes_per_param = 2.0;

    /** True for retrieval-augmented architectures (RETRO-style). */
    bool retrieval_augmented = false;

    /**
     * KV-cache bytes per context token per sequence (FP16, accounting
     * for grouped-query attention where the architecture uses it).
     */
    double kv_bytes_per_token = 0.0;

    /** Parameter bytes resident on GPU. */
    double
    paramBytes() const
    {
        return params_b * 1e9 * bytes_per_param;
    }

    /** Minimum GPUs of @p gpu needed to hold the parameters. */
    std::size_t minGpus(const GpuProfile &gpu) const;

    /**
     * Largest batch whose KV cache fits next to the weights on
     * @p num_gpus of @p gpu at the given per-sequence context length.
     */
    std::size_t maxBatch(const GpuProfile &gpu, std::size_t num_gpus,
                         std::size_t context_tokens) const;
};

const LlmProfile &llmProfile(LlmModel model);

} // namespace sim
} // namespace hermes
