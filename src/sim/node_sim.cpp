#include "sim/node_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace hermes {
namespace sim {

const char *
dvfsPolicyName(DvfsPolicy policy)
{
    switch (policy) {
      case DvfsPolicy::None:           return "none";
      case DvfsPolicy::SlowestCluster: return "baseline-dvfs";
      case DvfsPolicy::MatchInference: return "enhanced-dvfs";
    }
    return "?";
}

MultiNodeSimulator::MultiNodeSimulator(const MultiNodeConfig &config)
    : config_(config), cost_(cpuProfile(config.cpu))
{
    HERMES_ASSERT(config_.num_clusters >= 1, "need at least one cluster");
    HERMES_ASSERT(config_.batch >= 1, "need at least one query per batch");
    if (!config_.cluster_shares.empty()) {
        HERMES_ASSERT(config_.cluster_shares.size() == config_.num_clusters,
                      "cluster_shares size mismatch");
    }
}

DatastoreGeometry
MultiNodeSimulator::clusterGeometry(std::size_t c) const
{
    HERMES_ASSERT(c < config_.num_clusters, "bad cluster ", c);
    if (config_.cluster_shares.empty())
        return config_.total.split(config_.num_clusters);

    double total_share = 0.0;
    for (double s : config_.cluster_shares)
        total_share += s;
    DatastoreGeometry geo = config_.total;
    geo.tokens = config_.total.tokens * config_.cluster_shares[c] /
                 total_share;
    return geo;
}

double
MultiNodeSimulator::nodeDeepTime(std::size_t c, std::size_t queries) const
{
    if (queries == 0)
        return 0.0;
    return cost_.batchLatency(clusterGeometry(c), config_.deep_nprobe,
                              queries, 1.0,
                              config_.intra_query_parallelism);
}

BatchResult
MultiNodeSimulator::simulateBatch(
    const std::vector<std::vector<std::uint32_t>> &accesses) const
{
    const std::size_t n = config_.num_clusters;
    const auto &cpu = cost_.cpu();
    const double min_frac = cpu.min_freq_ghz / cpu.max_freq_ghz;

    BatchResult result;
    result.node_queries.assign(n, 0);
    for (const auto &query : accesses) {
        for (auto c : query) {
            HERMES_ASSERT(c < n, "access to cluster ", c, " of ", n);
            result.node_queries[c]++;
        }
    }

    // --- Sampling phase: every node serves the full batch at a low
    // nProbe (skipped when sample_nprobe == 0).
    double sample_energy = 0.0;
    if (config_.sample_nprobe > 0) {
        std::size_t sample_batch =
            accesses.size() ? accesses.size() : config_.batch;
        std::vector<double> sample_times(n);
        for (std::size_t c = 0; c < n; ++c) {
            sample_times[c] = cost_.batchLatency(
                clusterGeometry(c), config_.sample_nprobe, sample_batch,
                1.0, config_.intra_query_parallelism);
            result.sample_latency =
                std::max(result.sample_latency, sample_times[c]);
        }
        // Nodes busy for their own time, idle until the slowest finishes.
        for (std::size_t c = 0; c < n; ++c) {
            sample_energy += cost_.energy(sample_times[c], 1.0, 1.0);
            sample_energy += cost_.energy(
                result.sample_latency - sample_times[c], 0.0);
        }
    }

    // --- Deep phase at max frequency first, to find the critical path.
    std::vector<double> busy_full(n, 0.0);
    double deep_latency_full = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        busy_full[c] = nodeDeepTime(c, result.node_queries[c]);
        deep_latency_full = std::max(deep_latency_full, busy_full[c]);
    }

    // --- Apply the DVFS policy: pick a per-node frequency so the node
    // finishes no later than the policy's deadline.
    double deadline = deep_latency_full;
    if (config_.dvfs == DvfsPolicy::MatchInference) {
        deadline = std::max(deep_latency_full, config_.inference_latency);
    }

    result.node_busy.assign(n, 0.0);
    result.node_freq.assign(n, 1.0);
    double deep_energy = 0.0;
    result.deep_latency = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
        double freq = 1.0;
        if (config_.dvfs != DvfsPolicy::None && busy_full[c] > 0.0 &&
            deadline > 0.0) {
            freq = std::clamp(busy_full[c] / deadline, min_frac, 1.0);
        }
        double busy = busy_full[c] > 0.0 ? busy_full[c] / freq : 0.0;
        result.node_freq[c] = freq;
        result.node_busy[c] = busy;
        result.deep_latency = std::max(result.deep_latency, busy);
    }
    // Energy accounting window: when retrieval is pipelined with
    // inference, every node sits in the deployment for the inference
    // window regardless of DVFS policy, so idle time is charged up to
    // max(deep window, inference window) for a fair policy comparison.
    double window = std::max(result.deep_latency,
                             config_.inference_latency);
    for (std::size_t c = 0; c < n; ++c) {
        // Utilization while busy: queries spread over cores in waves.
        double util = 0.0;
        if (result.node_queries[c] > 0) {
            double waves = std::ceil(
                static_cast<double>(result.node_queries[c]) /
                static_cast<double>(cpu.cores));
            util = static_cast<double>(result.node_queries[c]) /
                   (waves * static_cast<double>(cpu.cores));
        }
        deep_energy += cost_.energy(result.node_busy[c], util,
                                    result.node_freq[c]);
        deep_energy += cost_.energy(window - result.node_busy[c], 0.0);
    }

    result.latency = result.sample_latency + result.deep_latency;
    result.energy = sample_energy + deep_energy;
    std::size_t queries = accesses.size() ? accesses.size() : config_.batch;
    result.throughput_qps =
        result.latency > 0.0 ? static_cast<double>(queries) / result.latency
                             : 0.0;
    return result;
}

BatchResult
MultiNodeSimulator::simulateUniformBatch(
    std::size_t clusters_per_query) const
{
    HERMES_ASSERT(clusters_per_query >= 1 &&
                  clusters_per_query <= config_.num_clusters,
                  "clusters_per_query out of range");
    std::vector<std::vector<std::uint32_t>> accesses(config_.batch);
    std::size_t next = 0;
    for (auto &query : accesses) {
        query.reserve(clusters_per_query);
        for (std::size_t i = 0; i < clusters_per_query; ++i) {
            query.push_back(static_cast<std::uint32_t>(
                next % config_.num_clusters));
            ++next;
        }
    }
    return simulateBatch(accesses);
}

BatchResult
MultiNodeSimulator::replayTrace(const workload::ClusterTrace &trace) const
{
    HERMES_ASSERT(trace.num_clusters == config_.num_clusters,
                  "trace cluster count (", trace.num_clusters,
                  ") != deployment (", config_.num_clusters, ")");
    auto batches = trace.batches(config_.batch);
    HERMES_ASSERT(!batches.empty(), "empty trace");

    BatchResult mean;
    mean.node_busy.assign(config_.num_clusters, 0.0);
    mean.node_freq.assign(config_.num_clusters, 0.0);
    mean.node_queries.assign(config_.num_clusters, 0);
    double total_queries = 0.0;
    double total_time = 0.0;

    for (const auto &batch : batches) {
        std::vector<std::vector<std::uint32_t>> accesses;
        accesses.reserve(batch.size());
        for (const auto *record : batch)
            accesses.push_back(record->clusters);
        auto r = simulateBatch(accesses);

        mean.sample_latency += r.sample_latency;
        mean.deep_latency += r.deep_latency;
        mean.latency += r.latency;
        mean.energy += r.energy;
        for (std::size_t c = 0; c < config_.num_clusters; ++c) {
            mean.node_busy[c] += r.node_busy[c];
            mean.node_freq[c] += r.node_freq[c];
            mean.node_queries[c] += r.node_queries[c];
        }
        total_queries += static_cast<double>(batch.size());
        total_time += r.latency;
    }

    double inv = 1.0 / static_cast<double>(batches.size());
    mean.sample_latency *= inv;
    mean.deep_latency *= inv;
    mean.latency *= inv;
    mean.energy *= inv;
    for (std::size_t c = 0; c < config_.num_clusters; ++c) {
        mean.node_busy[c] *= inv;
        mean.node_freq[c] *= inv;
    }
    mean.throughput_qps = total_time > 0.0 ? total_queries / total_time : 0.0;
    return mean;
}

} // namespace sim
} // namespace hermes
