/**
 * @file
 * Online-serving queue simulator.
 *
 * The paper motivates Hermes partly through production quality-of-service
 * (Takeaway 2: "variations and imbalances in the TTFT can adversely affect
 * the quality of service"). This discrete-event simulator subjects a
 * serving deployment to a Poisson query stream with batch formation and
 * reports the latency *distribution* (p50/p95/p99), not just the mean —
 * the lens production operators actually use.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "util/stats.hpp"

namespace hermes {
namespace sim {

/** Queue simulation parameters. */
struct QueueConfig
{
    /** Mean query arrival rate (queries/second, Poisson process). */
    double arrival_qps = 50.0;

    /** Maximum batch size the server forms. */
    std::size_t max_batch = 128;

    /**
     * Maximum time the server waits to fill a batch once at least one
     * query is queued (seconds). 0 = serve immediately with whatever is
     * queued.
     */
    double max_wait = 0.05;

    /** Number of queries to simulate. */
    std::size_t num_queries = 20000;

    /** Arrival-process seed. */
    std::uint64_t seed = 99;
};

/** Queue simulation output. */
struct QueueResult
{
    /** End-to-end latency distribution (wait + service), seconds. */
    util::Distribution latency;

    /** Queueing delay distribution, seconds. */
    util::Distribution wait;

    /** Batch sizes actually served. */
    util::Distribution batch_sizes;

    /** Fraction of time the server was busy. */
    double utilization = 0.0;

    /** Served throughput (queries/second over the simulated horizon). */
    double throughput_qps = 0.0;
};

/**
 * Simulate a single-server batching loop.
 *
 * @param config       Arrival and batching parameters.
 * @param service_time Latency to serve a batch of the given size
 *                     (seconds); typically RagPipelineSim-derived.
 */
QueueResult simulateQueue(const QueueConfig &config,
                          const std::function<double(std::size_t)>
                              &service_time);

} // namespace sim
} // namespace hermes
