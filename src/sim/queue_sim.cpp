#include "sim/queue_sim.hpp"

#include <cmath>
#include <deque>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace hermes {
namespace sim {

QueueResult
simulateQueue(const QueueConfig &config,
              const std::function<double(std::size_t)> &service_time)
{
    HERMES_ASSERT(config.arrival_qps > 0.0, "arrival rate must be > 0");
    HERMES_ASSERT(config.max_batch >= 1, "max_batch must be >= 1");
    HERMES_ASSERT(config.num_queries >= 1, "nothing to simulate");

    util::Rng rng(config.seed);
    QueueResult result;

    // Pre-draw Poisson arrival times.
    std::vector<double> arrivals(config.num_queries);
    double t = 0.0;
    for (auto &arrival : arrivals) {
        // Exponential inter-arrival gap.
        double u = std::max(rng.uniform(), 1e-12);
        t += -std::log(u) / config.arrival_qps;
        arrival = t;
    }

    double server_free_at = 0.0;
    double busy_time = 0.0;
    std::size_t next = 0;
    double last_completion = 0.0;

    while (next < arrivals.size()) {
        // The server picks up work when it is free and a query is queued.
        double pickup = std::max(server_free_at, arrivals[next]);

        // Batch formation: wait up to max_wait after pickup for more
        // arrivals, capped at max_batch.
        double deadline = pickup + config.max_wait;
        std::size_t first = next;
        std::size_t count = 0;
        while (next < arrivals.size() && count < config.max_batch &&
               arrivals[next] <= deadline) {
            ++next;
            ++count;
        }
        // Serving starts once the batch closes: either the deadline hit
        // (queue drained) or the batch filled.
        double start = count == config.max_batch
            ? std::max(pickup, arrivals[next - 1])
            : (next < arrivals.size() ? deadline
                                      : std::max(pickup,
                                                 arrivals[next - 1]));
        double service = service_time(count);
        HERMES_ASSERT(service > 0.0, "service time must be positive");
        double completion = start + service;

        for (std::size_t q = first; q < first + count; ++q) {
            result.latency.add(completion - arrivals[q]);
            result.wait.add(start - arrivals[q]);
        }
        result.batch_sizes.add(static_cast<double>(count));
        busy_time += service;
        server_free_at = completion;
        last_completion = completion;
    }

    result.utilization = last_completion > 0.0
        ? busy_time / last_completion : 0.0;
    result.throughput_qps = last_completion > 0.0
        ? static_cast<double>(config.num_queries) / last_completion : 0.0;
    return result;
}

} // namespace sim
} // namespace hermes
