#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace hermes {
namespace sim {

std::size_t
DatastoreGeometry::nlist() const
{
    auto sqrt_n = static_cast<std::size_t>(std::sqrt(numVectors()));
    return std::clamp<std::size_t>(sqrt_n, 1, kMaxNlist);
}

double
DatastoreGeometry::indexBytes() const
{
    // Codes + 8-byte ids per vector, plus the fp32 centroid table.
    return numVectors() * (static_cast<double>(code_bytes) + 8.0) +
           static_cast<double>(nlist()) * dim * 4.0;
}

DatastoreGeometry
DatastoreGeometry::split(std::size_t n) const
{
    HERMES_ASSERT(n >= 1, "split into at least one cluster");
    DatastoreGeometry out = *this;
    out.tokens = tokens / static_cast<double>(n);
    return out;
}

double
RetrievalCostModel::queryScanBytes(const DatastoreGeometry &geo,
                                   std::size_t nprobe) const
{
    std::size_t nlist = geo.nlist();
    double probe_frac =
        std::min(1.0, static_cast<double>(nprobe) /
                          static_cast<double>(nlist));
    double centroid_bytes =
        static_cast<double>(nlist) * geo.dim * sizeof(float);
    double list_bytes = probe_frac * geo.numVectors() * geo.code_bytes;
    return centroid_bytes + list_bytes;
}

double
RetrievalCostModel::queryLatency(double scan_bytes, double freq_frac) const
{
    HERMES_ASSERT(freq_frac > 0.0 && freq_frac <= 1.0,
                  "freq_frac out of range: ", freq_frac);
    double rate = cpu_.scan_gbps_per_core * 1e9 * freq_frac;
    return scan_bytes / rate;
}

double
RetrievalCostModel::batchLatency(const DatastoreGeometry &geo,
                                 std::size_t nprobe, std::size_t batch,
                                 double freq_frac,
                                 bool intra_query_parallel) const
{
    HERMES_ASSERT(batch > 0, "batch must be positive");
    double per_query = queryLatency(queryScanBytes(geo, nprobe), freq_frac);
    double waves = std::ceil(static_cast<double>(batch) /
                             static_cast<double>(cpu_.cores));
    if (intra_query_parallel && batch < cpu_.cores) {
        double threads_per_query =
            std::min(static_cast<double>(cpu_.cores) /
                         static_cast<double>(batch),
                     kIntraQueryMaxSpeedup);
        double speedup = 1.0 + (threads_per_query - 1.0) * kIntraQueryEff;
        per_query /= speedup;
    }
    return waves * per_query;
}

double
RetrievalCostModel::power(double utilization, double freq_frac) const
{
    utilization = std::clamp(utilization, 0.0, 1.0);
    double f3 = freq_frac * freq_frac * freq_frac;
    return cpu_.idle_watts +
           (cpu_.tdp_watts - cpu_.idle_watts) * utilization * f3;
}

double
RetrievalCostModel::throughputQps(const DatastoreGeometry &geo,
                                  std::size_t nprobe,
                                  std::size_t batch) const
{
    double latency = batchLatency(geo, nprobe, batch);
    return static_cast<double>(batch) / latency;
}

LlmCostModel::LlmCostModel(LlmModel model, GpuModel gpu,
                           std::size_t num_gpus)
    : model_(llmProfile(model)), gpu_(gpuProfile(gpu)), num_gpus_(num_gpus)
{
    std::size_t min_gpus = model_.minGpus(gpu_);
    if (num_gpus_ == 0) {
        num_gpus_ = min_gpus;
    } else if (num_gpus_ < min_gpus) {
        HERMES_FATAL(model_.name, " needs at least ", min_gpus, "x ",
                     gpu_.name, " (", num_gpus_, " requested)");
    }
}

double
LlmCostModel::tpFactor() const
{
    // First GPU contributes 1.0, each extra one kTpEff (all-reduce
    // overhead eats the rest) — why Fig 17 shows diminishing returns for
    // small models spread over multiple GPUs.
    return 1.0 + kTpEff * static_cast<double>(num_gpus_ - 1);
}

double
LlmCostModel::prefillLatency(std::size_t batch, std::size_t tokens) const
{
    double flops = static_cast<double>(batch) * tokens * 2.0 *
                   model_.params_b * 1e9;
    double effective = gpu_.peak_tflops * 1e12 * kTensorCoreFactor *
                       tpFactor();
    return flops / effective;
}

double
LlmCostModel::decodeLatency(std::size_t batch, std::size_t tokens) const
{
    // Per step, every TP rank streams its parameter shard; the step is
    // bandwidth-bound until batches grow large enough to hit compute.
    double bw_step = model_.paramBytes() /
                     (gpu_.mem_bw_gbps * 1e9 * kDecodeBwEff * tpFactor());
    double compute_step = static_cast<double>(batch) * 2.0 *
                          model_.params_b * 1e9 /
                          (gpu_.peak_tflops * 1e12 * kTensorCoreFactor *
                           tpFactor());
    return static_cast<double>(tokens) * std::max(bw_step, compute_step);
}

double
LlmCostModel::busyEnergy(double seconds) const
{
    return seconds * gpu_.tdp_watts * static_cast<double>(num_gpus_);
}

double
LlmCostModel::idleEnergy(double seconds) const
{
    return seconds * gpu_.idle_watts * static_cast<double>(num_gpus_);
}

} // namespace sim
} // namespace hermes
