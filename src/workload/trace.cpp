#include "workload/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace hermes {
namespace workload {

std::vector<std::size_t>
ClusterTrace::accessCounts() const
{
    std::vector<std::size_t> counts(num_clusters, 0);
    for (const auto &record : records) {
        for (auto c : record.clusters) {
            HERMES_ASSERT(c < num_clusters, "trace references cluster ", c,
                          " outside deployment of ", num_clusters);
            counts[c]++;
        }
    }
    return counts;
}

std::vector<std::vector<const TraceRecord *>>
ClusterTrace::batches(std::size_t batch_size) const
{
    HERMES_ASSERT(batch_size > 0, "batch size must be positive");
    std::vector<std::vector<const TraceRecord *>> out;
    for (std::size_t i = 0; i < records.size(); i += batch_size) {
        std::vector<const TraceRecord *> batch;
        for (std::size_t j = i;
             j < std::min(i + batch_size, records.size()); ++j) {
            batch.push_back(&records[j]);
        }
        out.push_back(std::move(batch));
    }
    return out;
}

ClusterTrace
ClusterTrace::loadCsv(const std::string &path, std::size_t num_clusters)
{
    std::ifstream in(path);
    if (!in)
        HERMES_FATAL("cannot open trace CSV: ", path);

    ClusterTrace trace;
    trace.num_clusters = num_clusters;
    std::string line;
    std::getline(in, line); // header
    HERMES_ASSERT(line == "query,clusters",
                  "not a trace CSV (bad header): ", path);
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        auto comma = line.find(',');
        HERMES_ASSERT(comma != std::string::npos,
                      "malformed trace row: ", line);
        TraceRecord record;
        record.query = static_cast<std::uint32_t>(
            std::stoul(line.substr(0, comma)));
        std::istringstream clusters(line.substr(comma + 1));
        std::uint32_t c;
        while (clusters >> c) {
            HERMES_ASSERT(c < num_clusters, "trace row references cluster ",
                          c, " outside deployment of ", num_clusters);
            record.clusters.push_back(c);
        }
        trace.records.push_back(std::move(record));
    }
    return trace;
}

void
ClusterTrace::saveCsv(const std::string &path) const
{
    util::CsvWriter csv(path);
    csv.header({"query", "clusters"});
    for (const auto &record : records) {
        std::ostringstream oss;
        for (std::size_t i = 0; i < record.clusters.size(); ++i) {
            if (i)
                oss << ' ';
            oss << record.clusters[i];
        }
        csv.cell(record.query).cell(oss.str());
        csv.endRow();
    }
}

} // namespace workload
} // namespace hermes
