/**
 * @file
 * Query traces for the multi-node analysis tool (paper Fig 15).
 *
 * A trace records, for every query of a workload, which clusters the deep
 * search visited. The simulator replays traces to derive per-node load,
 * latency, throughput and energy — exactly how the paper pairs on-device
 * measurements with a TriviaQA-derived cluster access trace.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hermes {
namespace workload {

/** One query's cluster accesses. */
struct TraceRecord
{
    /** Query index within the workload. */
    std::uint32_t query = 0;

    /** Clusters searched in depth, best-ranked first. */
    std::vector<std::uint32_t> clusters;
};

/** A replayable cluster-access trace. */
struct ClusterTrace
{
    /** Number of clusters in the deployment. */
    std::size_t num_clusters = 0;

    /** Per-query access records. */
    std::vector<TraceRecord> records;

    /** Total accesses per cluster. */
    std::vector<std::size_t> accessCounts() const;

    /**
     * Group records into batches of @p batch_size (final batch may be
     * short), preserving order.
     */
    std::vector<std::vector<const TraceRecord *>>
    batches(std::size_t batch_size) const;

    /** Persist as CSV (query, cluster list). */
    void saveCsv(const std::string &path) const;

    /**
     * Load a trace written by saveCsv().
     * @param path         CSV file.
     * @param num_clusters Deployment size (validates cluster ids).
     */
    static ClusterTrace loadCsv(const std::string &path,
                                std::size_t num_clusters);
};

} // namespace workload
} // namespace hermes
