#include "workload/corpus.hpp"

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "vecstore/distance.hpp"

namespace hermes {
namespace workload {

Corpus
generateCorpus(const CorpusConfig &config)
{
    HERMES_ASSERT(config.num_docs > 0, "corpus needs documents");
    HERMES_ASSERT(config.num_topics > 0, "corpus needs topics");
    HERMES_ASSERT(config.dim > 0, "corpus needs dim > 0");

    util::Rng rng(config.seed);
    Corpus corpus;
    corpus.config = config;

    // Topic centers: random unit vectors. In high dimension these are
    // nearly orthogonal, giving well-separated topics like real semantic
    // embedding spaces.
    corpus.topic_centers = vecstore::Matrix(config.num_topics, config.dim);
    for (std::size_t t = 0; t < config.num_topics; ++t) {
        auto row = corpus.topic_centers.row(t);
        for (std::size_t j = 0; j < config.dim; ++j)
            row[j] = static_cast<float>(rng.gaussian());
        vecstore::normalize(row.data(), config.dim);
    }

    util::ZipfSampler topic_sampler(config.num_topics, config.topic_zipf);

    corpus.embeddings = vecstore::Matrix(config.num_docs, config.dim);
    corpus.topic_of_doc.resize(config.num_docs);
    for (std::size_t i = 0; i < config.num_docs; ++i) {
        std::size_t topic = topic_sampler(rng);
        corpus.topic_of_doc[i] = static_cast<std::uint32_t>(topic);
        auto center = corpus.topic_centers.row(topic);
        auto row = corpus.embeddings.row(i);
        for (std::size_t j = 0; j < config.dim; ++j) {
            row[j] = center[j] + static_cast<float>(
                rng.gaussian(0.0, config.topic_spread));
        }
        if (config.normalize)
            vecstore::normalize(row.data(), config.dim);
    }
    return corpus;
}

QuerySet
generateQueries(const Corpus &corpus, const QueryConfig &config)
{
    HERMES_ASSERT(config.num_queries > 0, "need at least one query");
    const auto &cc = corpus.config;

    util::Rng rng(config.seed ^ 0x5eedU);
    util::ZipfSampler topic_sampler(cc.num_topics, config.topic_zipf);

    // Bucket documents by topic so queries can perturb a real document
    // rather than the abstract topic center.
    std::vector<std::vector<std::size_t>> docs_of_topic(cc.num_topics);
    for (std::size_t i = 0; i < corpus.topic_of_doc.size(); ++i)
        docs_of_topic[corpus.topic_of_doc[i]].push_back(i);

    QuerySet queries;
    queries.embeddings = vecstore::Matrix(config.num_queries, cc.dim);
    queries.topic_of_query.resize(config.num_queries);

    for (std::size_t q = 0; q < config.num_queries; ++q) {
        std::size_t topic = topic_sampler(rng);
        // Zipf can pick a topic that received no documents; fall back to
        // the most popular topic which always has some.
        while (docs_of_topic[topic].empty())
            topic = (topic + 1) % cc.num_topics;
        queries.topic_of_query[q] = static_cast<std::uint32_t>(topic);

        const auto &bucket = docs_of_topic[topic];
        std::size_t doc = bucket[rng.uniformInt(bucket.size())];
        auto seed_doc = corpus.embeddings.row(doc);
        auto row = queries.embeddings.row(q);
        for (std::size_t j = 0; j < cc.dim; ++j) {
            row[j] = seed_doc[j] + static_cast<float>(
                rng.gaussian(0.0, config.noise));
        }
        if (config.normalize)
            vecstore::normalize(row.data(), cc.dim);
    }
    return queries;
}

} // namespace workload
} // namespace hermes
