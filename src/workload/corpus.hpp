/**
 * @file
 * Synthetic datastore generation.
 *
 * Stands in for the paper's SPHERE (encoded Common Crawl) corpus: documents
 * are drawn from a topic-mixture model — Gaussian topic centers with
 * per-topic spread — which gives the datastore the clusterable semantic
 * structure Hermes' similarity partitioning exploits. Topic popularity can
 * be skewed (Zipf) to reproduce the cluster-size imbalance of Fig 13.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "vecstore/matrix.hpp"

namespace hermes {
namespace workload {

/** Corpus synthesis parameters. */
struct CorpusConfig
{
    /** Number of document chunks (= vectors). */
    std::size_t num_docs = 20000;

    /** Embedding dimensionality. */
    std::size_t dim = 64;

    /** Number of latent topics. */
    std::size_t num_topics = 32;

    /** Within-topic standard deviation (topic centers have unit scale). */
    double topic_spread = 0.22;

    /** Zipf exponent for topic popularity (0 = uniform doc counts). */
    double topic_zipf = 0.6;

    /** Tokens represented by one chunk (paper: ~100 tokens/chunk). */
    std::size_t tokens_per_chunk = 100;

    /** Normalize embeddings to the unit sphere (RAG encoders do). */
    bool normalize = true;

    /** PRNG seed. */
    std::uint64_t seed = 42;
};

/** A synthesized datastore. */
struct Corpus
{
    /** Chunk embeddings, one row per document chunk. */
    vecstore::Matrix embeddings;

    /** Latent topic of each chunk. */
    std::vector<std::uint32_t> topic_of_doc;

    /** Topic centers (num_topics x dim), unit-normalized. */
    vecstore::Matrix topic_centers;

    /** Configuration used to generate this corpus. */
    CorpusConfig config;

    /** Total tokens represented (num_docs * tokens_per_chunk). */
    std::size_t
    totalTokens() const
    {
        return embeddings.rows() * config.tokens_per_chunk;
    }
};

/** Generate a corpus per @p config. */
Corpus generateCorpus(const CorpusConfig &config);

/** Query synthesis parameters. */
struct QueryConfig
{
    /** Number of queries. */
    std::size_t num_queries = 512;

    /** Noise added around the seed document (relative scale). */
    double noise = 0.30;

    /**
     * Zipf exponent of topic popularity across queries — question
     * workloads like Natural Questions concentrate on popular topics,
     * which produces the access-frequency imbalance of Fig 13.
     */
    double topic_zipf = 0.9;

    /** Normalize queries to the unit sphere. */
    bool normalize = true;

    /** PRNG seed (decorrelated from the corpus seed). */
    std::uint64_t seed = 1234;
};

/** A synthesized query workload. */
struct QuerySet
{
    /** Query embeddings, one row per query. */
    vecstore::Matrix embeddings;

    /** Topic each query was seeded from. */
    std::vector<std::uint32_t> topic_of_query;
};

/**
 * Generate queries correlated with @p corpus topics: each query perturbs a
 * random document of a Zipf-popular topic.
 */
QuerySet generateQueries(const Corpus &corpus, const QueryConfig &config);

} // namespace workload
} // namespace hermes
