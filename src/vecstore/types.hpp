/**
 * @file
 * Fundamental identifier and span types shared across the vector stack.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace hermes {
namespace vecstore {

/** Identifier of a stored vector / document chunk. */
using VecId = std::int64_t;

/** Sentinel for "no result". */
inline constexpr VecId kInvalidId = -1;

/** Read-only view of one embedding. */
using VecView = std::span<const float>;

/** Mutable view of one embedding. */
using MutVecView = std::span<float>;

/** One (id, score) search hit. Lower distance = better for L2 metrics. */
struct Hit
{
    VecId id = kInvalidId;
    float score = std::numeric_limits<float>::max();

    bool operator==(const Hit &) const = default;
};

/** Per-query result list, best hit first. */
using HitList = std::vector<Hit>;

/** Distance metric selector. */
enum class Metric {
    L2,          ///< Squared Euclidean distance (smaller = closer).
    InnerProduct ///< Negated dot product so smaller = closer uniformly.
};

/** Human-readable metric name. */
const char *metricName(Metric m);

} // namespace vecstore
} // namespace hermes
