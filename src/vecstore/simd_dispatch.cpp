#include "vecstore/simd_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"

namespace hermes {
namespace vecstore {
namespace simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar arm. Four accumulators keep each loop free of a serial dependency
// chain so the autovectorizer can do what it wants; the per-row results are
// bitwise identical to the seed implementation, which the parity tests rely
// on when comparing dispatch arms.
// ---------------------------------------------------------------------------

float
scalarL2Sq(const float *a, const float *b, std::size_t d)
{
    float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
    std::size_t i = 0;
    for (; i + 4 <= d; i += 4) {
        float d0 = a[i] - b[i];
        float d1 = a[i + 1] - b[i + 1];
        float d2 = a[i + 2] - b[i + 2];
        float d3 = a[i + 3] - b[i + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    for (; i < d; ++i) {
        float diff = a[i] - b[i];
        acc0 += diff * diff;
    }
    return acc0 + acc1 + acc2 + acc3;
}

float
scalarDot(const float *a, const float *b, std::size_t d)
{
    float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
    std::size_t i = 0;
    for (; i + 4 <= d; i += 4) {
        acc0 += a[i] * b[i];
        acc1 += a[i + 1] * b[i + 1];
        acc2 += a[i + 2] * b[i + 2];
        acc3 += a[i + 3] * b[i + 3];
    }
    for (; i < d; ++i)
        acc0 += a[i] * b[i];
    return acc0 + acc1 + acc2 + acc3;
}

// Blocked scans: 4 rows in flight hides load latency even without SIMD,
// and the software prefetch pulls the next row group while the current
// one is being reduced.

void
scalarL2SqBatch(const float *query, const float *base, std::size_t n,
                std::size_t d, float *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        __builtin_prefetch(r0 + 4 * d, 0, 3);
        out[i] = scalarL2Sq(query, r0, d);
        out[i + 1] = scalarL2Sq(query, r0 + d, d);
        out[i + 2] = scalarL2Sq(query, r0 + 2 * d, d);
        out[i + 3] = scalarL2Sq(query, r0 + 3 * d, d);
    }
    for (; i < n; ++i)
        out[i] = scalarL2Sq(query, base + i * d, d);
}

void
scalarDotBatch(const float *query, const float *base, std::size_t n,
               std::size_t d, float *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        __builtin_prefetch(r0 + 4 * d, 0, 3);
        out[i] = scalarDot(query, r0, d);
        out[i + 1] = scalarDot(query, r0 + d, d);
        out[i + 2] = scalarDot(query, r0 + 2 * d, d);
        out[i + 3] = scalarDot(query, r0 + 3 * d, d);
    }
    for (; i < n; ++i)
        out[i] = scalarDot(query, base + i * d, d);
}

void
scalarSq8ScanL2(const float *a, const float *b, const std::uint8_t *codes,
                std::size_t n, std::size_t d, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        __builtin_prefetch(code + 2 * d, 0, 3);
        float acc = 0.f;
        for (std::size_t j = 0; j < d; ++j) {
            float diff = a[j] - b[j] * static_cast<float>(code[j]);
            acc += diff * diff;
        }
        out[i] = acc;
    }
}

void
scalarSq8ScanIp(const float *a, float bias, const std::uint8_t *codes,
                std::size_t n, std::size_t d, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        __builtin_prefetch(code + 2 * d, 0, 3);
        float acc = 0.f;
        for (std::size_t j = 0; j < d; ++j)
            acc += a[j] * static_cast<float>(code[j]);
        out[i] = -(bias + acc);
    }
}

// Multi-query tiles: the row block (4 rows) stays hot in L1 while every
// query visits it, so the corpus is streamed from DRAM once per batch.
// Each (query, row) score is produced by the same scalarL2Sq/scalarDot
// call the single-query kernels use — bitwise-identical by construction.

void
scalarL2SqBatchMulti(const float *const *queries, std::size_t q_count,
                     const float *base, std::size_t n, std::size_t d,
                     float *const *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        __builtin_prefetch(r0 + 4 * d, 0, 3);
        for (std::size_t q = 0; q < q_count; ++q) {
            const float *query = queries[q];
            float *o = out[q];
            o[i] = scalarL2Sq(query, r0, d);
            o[i + 1] = scalarL2Sq(query, r0 + d, d);
            o[i + 2] = scalarL2Sq(query, r0 + 2 * d, d);
            o[i + 3] = scalarL2Sq(query, r0 + 3 * d, d);
        }
    }
    for (; i < n; ++i) {
        const float *row = base + i * d;
        for (std::size_t q = 0; q < q_count; ++q)
            out[q][i] = scalarL2Sq(queries[q], row, d);
    }
}

void
scalarDotBatchMulti(const float *const *queries, std::size_t q_count,
                    const float *base, std::size_t n, std::size_t d,
                    float *const *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        __builtin_prefetch(r0 + 4 * d, 0, 3);
        for (std::size_t q = 0; q < q_count; ++q) {
            const float *query = queries[q];
            float *o = out[q];
            o[i] = scalarDot(query, r0, d);
            o[i + 1] = scalarDot(query, r0 + d, d);
            o[i + 2] = scalarDot(query, r0 + 2 * d, d);
            o[i + 3] = scalarDot(query, r0 + 3 * d, d);
        }
    }
    for (; i < n; ++i) {
        const float *row = base + i * d;
        for (std::size_t q = 0; q < q_count; ++q)
            out[q][i] = scalarDot(queries[q], row, d);
    }
}

void
scalarSq8ScanL2Multi(const float *const *a, const float *b,
                     std::size_t q_count, const std::uint8_t *codes,
                     std::size_t n, std::size_t d, float *const *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        __builtin_prefetch(code + 2 * d, 0, 3);
        for (std::size_t q = 0; q < q_count; ++q) {
            const float *aq = a[q];
            float acc = 0.f;
            for (std::size_t j = 0; j < d; ++j) {
                float diff = aq[j] - b[j] * static_cast<float>(code[j]);
                acc += diff * diff;
            }
            out[q][i] = acc;
        }
    }
}

void
scalarSq8ScanIpMulti(const float *const *a, const float *biases,
                     std::size_t q_count, const std::uint8_t *codes,
                     std::size_t n, std::size_t d, float *const *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        __builtin_prefetch(code + 2 * d, 0, 3);
        for (std::size_t q = 0; q < q_count; ++q) {
            const float *aq = a[q];
            float acc = 0.f;
            for (std::size_t j = 0; j < d; ++j)
                acc += aq[j] * static_cast<float>(code[j]);
            out[q][i] = -(biases[q] + acc);
        }
    }
}

/*
 * Transposed-LUT multi-query accumulation (PQ ADC batch scan). The code
 * list is swept once per 8-query chunk so the chunk's compact table
 * block (m*entries*8 floats) stays cache-resident; the eight lanes'
 * accumulator chains live in registers across the sub loop (the
 * fixed-width block autovectorizes). Each lane is one ascending-sub sum
 * starting at zero, so lane results are bitwise identical to the AVX2
 * arm.
 */
void
scalarLutAccumMulti(const float *tlut, std::size_t entries,
                    std::size_t q_count, const std::uint8_t *codes,
                    std::size_t n, std::size_t m, float *const *out)
{
    const std::size_t chunks = (q_count + 7) / 8;
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        const float *table = tlut + chunk * m * entries * 8;
        const std::size_t q0 = chunk * 8;
        const std::size_t lanes =
            q_count - q0 < 8 ? q_count - q0 : std::size_t{8};
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t *code = codes + i * m;
            __builtin_prefetch(code + m, 0, 3);
            float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
            float a4 = 0.f, a5 = 0.f, a6 = 0.f, a7 = 0.f;
            for (std::size_t sub = 0; sub < m; ++sub) {
                const float *row =
                    table + (sub * entries + code[sub]) * 8;
                a0 += row[0];
                a1 += row[1];
                a2 += row[2];
                a3 += row[3];
                a4 += row[4];
                a5 += row[5];
                a6 += row[6];
                a7 += row[7];
            }
            float acc[8] = {a0, a1, a2, a3, a4, a5, a6, a7};
            for (std::size_t t = 0; t < lanes; ++t)
                out[q0 + t][i] = acc[t];
        }
    }
}

const KernelTable kScalarTable = {
    "scalar",
    scalarL2Sq,
    scalarDot,
    scalarL2SqBatch,
    scalarDotBatch,
    scalarSq8ScanL2,
    scalarSq8ScanIp,
    scalarL2SqBatchMulti,
    scalarDotBatchMulti,
    scalarSq8ScanL2Multi,
    scalarSq8ScanIpMulti,
    scalarLutAccumMulti,
};

// ---------------------------------------------------------------------------
// Arm selection.
// ---------------------------------------------------------------------------

[[maybe_unused]] bool
cpuHasAvx2Fma()
{
#if (defined(__x86_64__) || defined(__i386__)) &&                             \
    (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

const KernelTable *
chooseTable()
{
    const KernelTable *avx2 = avx2Kernels();
    const char *env = std::getenv("HERMES_SIMD");
    if (env != nullptr && *env != '\0') {
        if (std::strcmp(env, "scalar") == 0)
            return &kScalarTable;
        if (std::strcmp(env, "avx2") == 0) {
            if (avx2 != nullptr)
                return avx2;
            HERMES_WARN("HERMES_SIMD=avx2 requested but the AVX2 arm is "
                        "unavailable (not built or CPU lacks AVX2/FMA); "
                        "falling back to scalar kernels");
            return &kScalarTable;
        }
        HERMES_WARN("unknown HERMES_SIMD value '", env,
                    "' (expected scalar|avx2); using automatic dispatch");
    }
    return avx2 != nullptr ? avx2 : &kScalarTable;
}

std::atomic<const KernelTable *> g_active{nullptr};

} // namespace

const KernelTable &
scalarKernels()
{
    return kScalarTable;
}

const KernelTable *
avx2Kernels()
{
#ifdef HERMES_HAVE_AVX2_TU
    if (cpuHasAvx2Fma())
        return &detail::avx2TableImpl();
#endif
    return nullptr;
}

const KernelTable &
active()
{
    const KernelTable *table = g_active.load(std::memory_order_acquire);
    if (table == nullptr) {
        // Benign race: concurrent first callers compute the same choice.
        table = chooseTable();
        g_active.store(table, std::memory_order_release);
    }
    return *table;
}

const char *
activeIsa()
{
    return active().name;
}

bool
forceIsaForTesting(const char *name)
{
    if (std::strcmp(name, "scalar") == 0) {
        g_active.store(&kScalarTable, std::memory_order_release);
        return true;
    }
    if (std::strcmp(name, "avx2") == 0) {
        const KernelTable *avx2 = avx2Kernels();
        if (avx2 == nullptr)
            return false;
        g_active.store(avx2, std::memory_order_release);
        return true;
    }
    return false;
}

} // namespace simd
} // namespace vecstore
} // namespace hermes
