/**
 * @file
 * Top-k selection over "smaller is closer" scores.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "vecstore/types.hpp"

namespace hermes {
namespace vecstore {

/**
 * Bounded max-heap that keeps the k smallest-scored hits seen so far.
 *
 * push() is O(log k); results come out best-first via take().
 */
class TopK
{
  public:
    /** @param k Number of results to retain (k >= 1). */
    explicit TopK(std::size_t k);

    /** Offer one candidate. */
    void push(VecId id, float score);

    /**
     * Offer @p n candidates from parallel arrays. Equivalent to calling
     * push() in order, but candidates no better than the current worst
     * are rejected against a cached bound, so a mostly-losing batch (the
     * common case for a threshold-filtered list scan) costs one compare
     * per element instead of a heap probe.
     */
    void pushBatch(const VecId *ids, const float *scores, std::size_t n);

    /** Current worst retained score (+inf until k hits are held). */
    float worst() const;

    /** Number of hits currently held (<= k). */
    std::size_t size() const { return heap_.size(); }

    std::size_t capacity() const { return k_; }

    /** Extract results sorted best-first; the selector is left empty. */
    HitList take();

  private:
    std::size_t k_;
    std::vector<Hit> heap_; // max-heap on score
};

/**
 * Merge several best-first hit lists into a single best-first top-k list.
 * Duplicate ids (same chunk found via two routes) keep their best score.
 */
HitList mergeHitLists(const std::vector<HitList> &lists, std::size_t k);

} // namespace vecstore
} // namespace hermes
