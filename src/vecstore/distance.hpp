/**
 * @file
 * Dense distance kernels.
 *
 * All kernels return "smaller is closer" scores: L2 returns the squared
 * Euclidean distance and InnerProduct returns the negated dot product.
 * This lets the top-k machinery treat every metric as a min-selection.
 */

#pragma once

#include <cstddef>

#include "vecstore/types.hpp"

namespace hermes {
namespace vecstore {

/** Squared Euclidean distance between two d-dim vectors. */
float l2Sq(const float *a, const float *b, std::size_t d);

/** Dot product of two d-dim vectors. */
float dot(const float *a, const float *b, std::size_t d);

/** Squared L2 norm of a vector. */
float normSq(const float *a, std::size_t d);

/** Cosine similarity (0 for zero-norm inputs). */
float cosine(const float *a, const float *b, std::size_t d);

/** Metric-dispatching scalar distance (smaller = closer). */
float distance(Metric metric, const float *a, const float *b, std::size_t d);

/**
 * Blocked kernel: out[i] = l2Sq(query, base + i*d) for i in [0, n).
 * Rows must be contiguous; runs the SIMD arm selected at startup.
 */
void l2SqBatch(const float *query, const float *base, std::size_t n,
               std::size_t d, float *out);

/**
 * Blocked kernel: out[i] = dot(query, base + i*d) for i in [0, n).
 * Raw dot products — callers wanting IP *scores* negate themselves (or
 * use distanceBatch).
 */
void dotBatch(const float *query, const float *base, std::size_t n,
              std::size_t d, float *out);

/**
 * Batched query-to-corpus distances. Dispatches the metric once per call
 * (not per row) into the blocked kernels above.
 *
 * @param metric Distance metric.
 * @param query  Query vector (d floats).
 * @param base   Row-major corpus (n x d floats).
 * @param n      Number of corpus rows.
 * @param d      Dimensionality.
 * @param out    Output array of n scores (smaller = closer).
 */
void distanceBatch(Metric metric, const float *query, const float *base,
                   std::size_t n, std::size_t d, float *out);

/**
 * Multi-query blocked kernel: out[q][i] = l2Sq(queries[q], base + i*d).
 * One pass over the corpus scores every query (Q x N tile); per
 * (query, row) the result is bitwise identical to l2SqBatch.
 */
void l2SqBatchMulti(const float *const *queries, std::size_t q_count,
                    const float *base, std::size_t n, std::size_t d,
                    float *const *out);

/** Multi-query dotBatch: raw dot products (callers negate for IP). */
void dotBatchMulti(const float *const *queries, std::size_t q_count,
                   const float *base, std::size_t n, std::size_t d,
                   float *const *out);

/**
 * Multi-query distanceBatch: one metric dispatch, one corpus pass for
 * all q_count queries. Per query bitwise identical to distanceBatch.
 */
void distanceBatchMulti(Metric metric, const float *const *queries,
                        std::size_t q_count, const float *base,
                        std::size_t n, std::size_t d, float *const *out);

/** Normalize a vector to unit L2 norm in place (no-op on zero vectors). */
void normalize(float *a, std::size_t d);

} // namespace vecstore
} // namespace hermes
