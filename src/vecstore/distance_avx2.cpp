/**
 * @file
 * AVX2/FMA kernel arm.
 *
 * This is the only translation unit in the repo compiled with
 * -mavx2 -mfma (see src/vecstore/CMakeLists.txt); keeping the arch flags
 * confined here means the rest of the binary stays runnable on any
 * x86-64, with simd_dispatch.cpp deciding at startup whether this arm may
 * be used. Nothing here is referenced unless HERMES_HAVE_AVX2_TU is
 * defined for the vecstore target.
 *
 * Layout conventions match the scalar arm: batched kernels score one
 * query against n contiguous row-major rows, four rows in flight with a
 * software prefetch of the next row group. All loads are unaligned
 * (codes and matrix rows carry no alignment guarantee beyond their
 * element type).
 */

#include <cstddef>
#include <cstdint>
#include <immintrin.h>

#include "vecstore/simd_dispatch.hpp"

namespace hermes {
namespace vecstore {
namespace simd {

namespace {

/** Horizontal sum of the 8 lanes of @p v. */
inline float
hsum256(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    return _mm_cvtss_f32(lo);
}

/*
 * Single-vector kernels run four independent FMA chains (32 floats per
 * iteration): with two chains the d=768 case is latency-bound on the
 * accumulator dependency, not load throughput.
 */
float
avx2L2Sq(const float *a, const float *b, std::size_t d)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= d; i += 32) {
        __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                  _mm256_loadu_ps(b + i));
        __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                  _mm256_loadu_ps(b + i + 8));
        __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 16),
                                  _mm256_loadu_ps(b + i + 16));
        __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 24),
                                  _mm256_loadu_ps(b + i + 24));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        acc2 = _mm256_fmadd_ps(d2, d2, acc2);
        acc3 = _mm256_fmadd_ps(d3, d3, acc3);
    }
    for (; i + 8 <= d; i += 8) {
        __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                  _mm256_loadu_ps(b + i));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    }
    float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                      _mm256_add_ps(acc2, acc3)));
    for (; i < d; ++i) {
        float diff = a[i] - b[i];
        acc += diff * diff;
    }
    return acc;
}

float
avx2Dot(const float *a, const float *b, std::size_t d)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= d; i += 32) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                               _mm256_loadu_ps(b + i + 16), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                               _mm256_loadu_ps(b + i + 24), acc3);
    }
    for (; i + 8 <= d; i += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
    }
    float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                      _mm256_add_ps(acc2, acc3)));
    for (; i < d; ++i)
        acc += a[i] * b[i];
    return acc;
}

/**
 * Four-row blocked L2 scan: one pass over the query scores four rows,
 * so each 8-lane query load is amortized across four FMAs and the row
 * streams hit distinct load ports.
 */
void
avx2L2SqBatch(const float *query, const float *base, std::size_t n,
              std::size_t d, float *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        const float *r1 = r0 + d;
        const float *r2 = r1 + d;
        const float *r3 = r2 + d;
        _mm_prefetch(reinterpret_cast<const char *>(r3 + d), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char *>(r3 + 2 * d),
                     _MM_HINT_T0);
        __m256 a0 = _mm256_setzero_ps();
        __m256 a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps();
        __m256 a3 = _mm256_setzero_ps();
        std::size_t j = 0;
        for (; j + 8 <= d; j += 8) {
            __m256 q = _mm256_loadu_ps(query + j);
            __m256 d0 = _mm256_sub_ps(q, _mm256_loadu_ps(r0 + j));
            __m256 d1 = _mm256_sub_ps(q, _mm256_loadu_ps(r1 + j));
            __m256 d2 = _mm256_sub_ps(q, _mm256_loadu_ps(r2 + j));
            __m256 d3 = _mm256_sub_ps(q, _mm256_loadu_ps(r3 + j));
            a0 = _mm256_fmadd_ps(d0, d0, a0);
            a1 = _mm256_fmadd_ps(d1, d1, a1);
            a2 = _mm256_fmadd_ps(d2, d2, a2);
            a3 = _mm256_fmadd_ps(d3, d3, a3);
        }
        float s0 = hsum256(a0);
        float s1 = hsum256(a1);
        float s2 = hsum256(a2);
        float s3 = hsum256(a3);
        for (; j < d; ++j) {
            float q = query[j];
            float e0 = q - r0[j];
            float e1 = q - r1[j];
            float e2 = q - r2[j];
            float e3 = q - r3[j];
            s0 += e0 * e0;
            s1 += e1 * e1;
            s2 += e2 * e2;
            s3 += e3 * e3;
        }
        out[i] = s0;
        out[i + 1] = s1;
        out[i + 2] = s2;
        out[i + 3] = s3;
    }
    for (; i < n; ++i)
        out[i] = avx2L2Sq(query, base + i * d, d);
}

void
avx2DotBatch(const float *query, const float *base, std::size_t n,
             std::size_t d, float *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        const float *r1 = r0 + d;
        const float *r2 = r1 + d;
        const float *r3 = r2 + d;
        _mm_prefetch(reinterpret_cast<const char *>(r3 + d), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char *>(r3 + 2 * d),
                     _MM_HINT_T0);
        __m256 a0 = _mm256_setzero_ps();
        __m256 a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps();
        __m256 a3 = _mm256_setzero_ps();
        std::size_t j = 0;
        for (; j + 8 <= d; j += 8) {
            __m256 q = _mm256_loadu_ps(query + j);
            a0 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r0 + j), a0);
            a1 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r1 + j), a1);
            a2 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r2 + j), a2);
            a3 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r3 + j), a3);
        }
        float s0 = hsum256(a0);
        float s1 = hsum256(a1);
        float s2 = hsum256(a2);
        float s3 = hsum256(a3);
        for (; j < d; ++j) {
            float q = query[j];
            s0 += q * r0[j];
            s1 += q * r1[j];
            s2 += q * r2[j];
            s3 += q * r3[j];
        }
        out[i] = s0;
        out[i + 1] = s1;
        out[i + 2] = s2;
        out[i + 3] = s3;
    }
    for (; i < n; ++i)
        out[i] = avx2Dot(query, base + i * d, d);
}

/** Widen 8 code bytes to 8 float lanes. */
inline __m256
loadCodes8(const std::uint8_t *code)
{
    __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(code));
    return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
}

/**
 * Fused SQ8 dequant + L2: out[i] = sum_j (a[j] - b[j]*code[j])^2. The
 * inner loop dequantizes 32 code bytes per iteration (4 x 8 lanes).
 */
void
avx2Sq8ScanL2(const float *a, const float *b, const std::uint8_t *codes,
              std::size_t n, std::size_t d, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        _mm_prefetch(reinterpret_cast<const char *>(code + 2 * d),
                     _MM_HINT_T0);
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        __m256 acc2 = _mm256_setzero_ps();
        __m256 acc3 = _mm256_setzero_ps();
        std::size_t j = 0;
        for (; j + 32 <= d; j += 32) {
            __m256 d0 = _mm256_fnmadd_ps(_mm256_loadu_ps(b + j),
                                         loadCodes8(code + j),
                                         _mm256_loadu_ps(a + j));
            __m256 d1 = _mm256_fnmadd_ps(_mm256_loadu_ps(b + j + 8),
                                         loadCodes8(code + j + 8),
                                         _mm256_loadu_ps(a + j + 8));
            __m256 d2 = _mm256_fnmadd_ps(_mm256_loadu_ps(b + j + 16),
                                         loadCodes8(code + j + 16),
                                         _mm256_loadu_ps(a + j + 16));
            __m256 d3 = _mm256_fnmadd_ps(_mm256_loadu_ps(b + j + 24),
                                         loadCodes8(code + j + 24),
                                         _mm256_loadu_ps(a + j + 24));
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            acc2 = _mm256_fmadd_ps(d2, d2, acc2);
            acc3 = _mm256_fmadd_ps(d3, d3, acc3);
        }
        for (; j + 8 <= d; j += 8) {
            __m256 d0 = _mm256_fnmadd_ps(_mm256_loadu_ps(b + j),
                                         loadCodes8(code + j),
                                         _mm256_loadu_ps(a + j));
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        }
        float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                          _mm256_add_ps(acc2, acc3)));
        for (; j < d; ++j) {
            float diff = a[j] - b[j] * static_cast<float>(code[j]);
            acc += diff * diff;
        }
        out[i] = acc;
    }
}

/** Fused SQ8 dequant + IP: out[i] = -(bias + sum_j a[j]*code[j]). */
void
avx2Sq8ScanIp(const float *a, float bias, const std::uint8_t *codes,
              std::size_t n, std::size_t d, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        _mm_prefetch(reinterpret_cast<const char *>(code + 2 * d),
                     _MM_HINT_T0);
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        __m256 acc2 = _mm256_setzero_ps();
        __m256 acc3 = _mm256_setzero_ps();
        std::size_t j = 0;
        for (; j + 32 <= d; j += 32) {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j),
                                   loadCodes8(code + j), acc0);
            acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8),
                                   loadCodes8(code + j + 8), acc1);
            acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 16),
                                   loadCodes8(code + j + 16), acc2);
            acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 24),
                                   loadCodes8(code + j + 24), acc3);
        }
        for (; j + 8 <= d; j += 8) {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j),
                                   loadCodes8(code + j), acc0);
        }
        float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                          _mm256_add_ps(acc2, acc3)));
        for (; j < d; ++j)
            acc += a[j] * static_cast<float>(code[j]);
        out[i] = -(bias + acc);
    }
}

const KernelTable kAvx2Table = {
    "avx2",       avx2L2Sq,      avx2Dot,      avx2L2SqBatch,
    avx2DotBatch, avx2Sq8ScanL2, avx2Sq8ScanIp,
};

} // namespace

namespace detail {

const KernelTable &
avx2TableImpl()
{
    return kAvx2Table;
}

} // namespace detail

} // namespace simd
} // namespace vecstore
} // namespace hermes
