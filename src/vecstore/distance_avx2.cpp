/**
 * @file
 * AVX2/FMA kernel arm.
 *
 * This is the only translation unit in the repo compiled with
 * -mavx2 -mfma (see src/vecstore/CMakeLists.txt); keeping the arch flags
 * confined here means the rest of the binary stays runnable on any
 * x86-64, with simd_dispatch.cpp deciding at startup whether this arm may
 * be used. Nothing here is referenced unless HERMES_HAVE_AVX2_TU is
 * defined for the vecstore target.
 *
 * Layout conventions match the scalar arm: batched kernels score one
 * query against n contiguous row-major rows, four rows in flight with a
 * software prefetch of the next row group. All loads are unaligned
 * (codes and matrix rows carry no alignment guarantee beyond their
 * element type).
 */

#include <cstddef>
#include <cstdint>
#include <immintrin.h>
#include <vector>

#include "vecstore/simd_dispatch.hpp"

namespace hermes {
namespace vecstore {
namespace simd {

namespace {

/** Horizontal sum of the 8 lanes of @p v. */
inline float
hsum256(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
    lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
    return _mm_cvtss_f32(lo);
}

/*
 * Single-vector kernels run four independent FMA chains (32 floats per
 * iteration): with two chains the d=768 case is latency-bound on the
 * accumulator dependency, not load throughput.
 */
float
avx2L2Sq(const float *a, const float *b, std::size_t d)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= d; i += 32) {
        __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                  _mm256_loadu_ps(b + i));
        __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                                  _mm256_loadu_ps(b + i + 8));
        __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 16),
                                  _mm256_loadu_ps(b + i + 16));
        __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 24),
                                  _mm256_loadu_ps(b + i + 24));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        acc2 = _mm256_fmadd_ps(d2, d2, acc2);
        acc3 = _mm256_fmadd_ps(d3, d3, acc3);
    }
    for (; i + 8 <= d; i += 8) {
        __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                  _mm256_loadu_ps(b + i));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    }
    float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                      _mm256_add_ps(acc2, acc3)));
    for (; i < d; ++i) {
        float diff = a[i] - b[i];
        acc += diff * diff;
    }
    return acc;
}

float
avx2Dot(const float *a, const float *b, std::size_t d)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= d; i += 32) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                               _mm256_loadu_ps(b + i + 16), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                               _mm256_loadu_ps(b + i + 24), acc3);
    }
    for (; i + 8 <= d; i += 8) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
    }
    float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                      _mm256_add_ps(acc2, acc3)));
    for (; i < d; ++i)
        acc += a[i] * b[i];
    return acc;
}

/**
 * Four-row blocked L2 scan: one pass over the query scores four rows,
 * so each 8-lane query load is amortized across four FMAs and the row
 * streams hit distinct load ports.
 */
void
avx2L2SqBatch(const float *query, const float *base, std::size_t n,
              std::size_t d, float *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        const float *r1 = r0 + d;
        const float *r2 = r1 + d;
        const float *r3 = r2 + d;
        _mm_prefetch(reinterpret_cast<const char *>(r3 + d), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char *>(r3 + 2 * d),
                     _MM_HINT_T0);
        __m256 a0 = _mm256_setzero_ps();
        __m256 a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps();
        __m256 a3 = _mm256_setzero_ps();
        std::size_t j = 0;
        for (; j + 8 <= d; j += 8) {
            __m256 q = _mm256_loadu_ps(query + j);
            __m256 d0 = _mm256_sub_ps(q, _mm256_loadu_ps(r0 + j));
            __m256 d1 = _mm256_sub_ps(q, _mm256_loadu_ps(r1 + j));
            __m256 d2 = _mm256_sub_ps(q, _mm256_loadu_ps(r2 + j));
            __m256 d3 = _mm256_sub_ps(q, _mm256_loadu_ps(r3 + j));
            a0 = _mm256_fmadd_ps(d0, d0, a0);
            a1 = _mm256_fmadd_ps(d1, d1, a1);
            a2 = _mm256_fmadd_ps(d2, d2, a2);
            a3 = _mm256_fmadd_ps(d3, d3, a3);
        }
        float s0 = hsum256(a0);
        float s1 = hsum256(a1);
        float s2 = hsum256(a2);
        float s3 = hsum256(a3);
        for (; j < d; ++j) {
            float q = query[j];
            float e0 = q - r0[j];
            float e1 = q - r1[j];
            float e2 = q - r2[j];
            float e3 = q - r3[j];
            s0 += e0 * e0;
            s1 += e1 * e1;
            s2 += e2 * e2;
            s3 += e3 * e3;
        }
        out[i] = s0;
        out[i + 1] = s1;
        out[i + 2] = s2;
        out[i + 3] = s3;
    }
    for (; i < n; ++i)
        out[i] = avx2L2Sq(query, base + i * d, d);
}

void
avx2DotBatch(const float *query, const float *base, std::size_t n,
             std::size_t d, float *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        const float *r1 = r0 + d;
        const float *r2 = r1 + d;
        const float *r3 = r2 + d;
        _mm_prefetch(reinterpret_cast<const char *>(r3 + d), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char *>(r3 + 2 * d),
                     _MM_HINT_T0);
        __m256 a0 = _mm256_setzero_ps();
        __m256 a1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps();
        __m256 a3 = _mm256_setzero_ps();
        std::size_t j = 0;
        for (; j + 8 <= d; j += 8) {
            __m256 q = _mm256_loadu_ps(query + j);
            a0 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r0 + j), a0);
            a1 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r1 + j), a1);
            a2 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r2 + j), a2);
            a3 = _mm256_fmadd_ps(q, _mm256_loadu_ps(r3 + j), a3);
        }
        float s0 = hsum256(a0);
        float s1 = hsum256(a1);
        float s2 = hsum256(a2);
        float s3 = hsum256(a3);
        for (; j < d; ++j) {
            float q = query[j];
            s0 += q * r0[j];
            s1 += q * r1[j];
            s2 += q * r2[j];
            s3 += q * r3[j];
        }
        out[i] = s0;
        out[i + 1] = s1;
        out[i + 2] = s2;
        out[i + 3] = s3;
    }
    for (; i < n; ++i)
        out[i] = avx2Dot(query, base + i * d, d);
}

/** Widen 8 code bytes to 8 float lanes. */
inline __m256
loadCodes8(const std::uint8_t *code)
{
    __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(code));
    return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
}

/**
 * Fused SQ8 dequant + L2: out[i] = sum_j (a[j] - b[j]*code[j])^2. The
 * inner loop dequantizes 32 code bytes per iteration (4 x 8 lanes).
 *
 * The reconstruction product w = b*code is rounded separately before the
 * subtract (mul + sub, not fnmadd): the multi-query kernel below buffers
 * w per row and replays the same sub/fma chain per query, so the two
 * paths stay bitwise identical.
 */
void
avx2Sq8ScanL2(const float *a, const float *b, const std::uint8_t *codes,
              std::size_t n, std::size_t d, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        _mm_prefetch(reinterpret_cast<const char *>(code + 2 * d),
                     _MM_HINT_T0);
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        __m256 acc2 = _mm256_setzero_ps();
        __m256 acc3 = _mm256_setzero_ps();
        std::size_t j = 0;
        for (; j + 32 <= d; j += 32) {
            __m256 w0 = _mm256_mul_ps(_mm256_loadu_ps(b + j),
                                      loadCodes8(code + j));
            __m256 w1 = _mm256_mul_ps(_mm256_loadu_ps(b + j + 8),
                                      loadCodes8(code + j + 8));
            __m256 w2 = _mm256_mul_ps(_mm256_loadu_ps(b + j + 16),
                                      loadCodes8(code + j + 16));
            __m256 w3 = _mm256_mul_ps(_mm256_loadu_ps(b + j + 24),
                                      loadCodes8(code + j + 24));
            __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + j), w0);
            __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + j + 8), w1);
            __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(a + j + 16), w2);
            __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(a + j + 24), w3);
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            acc2 = _mm256_fmadd_ps(d2, d2, acc2);
            acc3 = _mm256_fmadd_ps(d3, d3, acc3);
        }
        for (; j + 8 <= d; j += 8) {
            __m256 w0 = _mm256_mul_ps(_mm256_loadu_ps(b + j),
                                      loadCodes8(code + j));
            __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + j), w0);
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        }
        float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                          _mm256_add_ps(acc2, acc3)));
        for (; j < d; ++j) {
            float diff = a[j] - b[j] * static_cast<float>(code[j]);
            acc += diff * diff;
        }
        out[i] = acc;
    }
}

/** Fused SQ8 dequant + IP: out[i] = -(bias + sum_j a[j]*code[j]). */
void
avx2Sq8ScanIp(const float *a, float bias, const std::uint8_t *codes,
              std::size_t n, std::size_t d, float *out)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        _mm_prefetch(reinterpret_cast<const char *>(code + 2 * d),
                     _MM_HINT_T0);
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        __m256 acc2 = _mm256_setzero_ps();
        __m256 acc3 = _mm256_setzero_ps();
        std::size_t j = 0;
        for (; j + 32 <= d; j += 32) {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j),
                                   loadCodes8(code + j), acc0);
            acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 8),
                                   loadCodes8(code + j + 8), acc1);
            acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 16),
                                   loadCodes8(code + j + 16), acc2);
            acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j + 24),
                                   loadCodes8(code + j + 24), acc3);
        }
        for (; j + 8 <= d; j += 8) {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + j),
                                   loadCodes8(code + j), acc0);
        }
        float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                          _mm256_add_ps(acc2, acc3)));
        for (; j < d; ++j)
            acc += a[j] * static_cast<float>(code[j]);
        out[i] = -(bias + acc);
    }
}

/*
 * Multi-query tiles. Register blocking is 2 queries x 4 rows (8
 * accumulators + 2 query lanes + row loads fits the 16 ymm registers);
 * each row load is amortized across both queries, and the 4-row block
 * stays in L1 while the remaining queries sweep it. Per (query, row) the
 * reduction order — j in steps of 8, hsum, scalar tail — is exactly the
 * single-query blocked kernel's, so scores are bitwise identical.
 */
void
avx2L2SqBatchMulti(const float *const *queries, std::size_t q_count,
                   const float *base, std::size_t n, std::size_t d,
                   float *const *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        const float *r1 = r0 + d;
        const float *r2 = r1 + d;
        const float *r3 = r2 + d;
        _mm_prefetch(reinterpret_cast<const char *>(r3 + d), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char *>(r3 + 2 * d),
                     _MM_HINT_T0);
        std::size_t q = 0;
        for (; q + 2 <= q_count; q += 2) {
            const float *qa = queries[q];
            const float *qb = queries[q + 1];
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            __m256 b0 = _mm256_setzero_ps();
            __m256 b1 = _mm256_setzero_ps();
            __m256 b2 = _mm256_setzero_ps();
            __m256 b3 = _mm256_setzero_ps();
            std::size_t j = 0;
            for (; j + 8 <= d; j += 8) {
                __m256 qav = _mm256_loadu_ps(qa + j);
                __m256 qbv = _mm256_loadu_ps(qb + j);
                __m256 v0 = _mm256_loadu_ps(r0 + j);
                __m256 v1 = _mm256_loadu_ps(r1 + j);
                __m256 v2 = _mm256_loadu_ps(r2 + j);
                __m256 v3 = _mm256_loadu_ps(r3 + j);
                __m256 da0 = _mm256_sub_ps(qav, v0);
                __m256 da1 = _mm256_sub_ps(qav, v1);
                __m256 da2 = _mm256_sub_ps(qav, v2);
                __m256 da3 = _mm256_sub_ps(qav, v3);
                __m256 db0 = _mm256_sub_ps(qbv, v0);
                __m256 db1 = _mm256_sub_ps(qbv, v1);
                __m256 db2 = _mm256_sub_ps(qbv, v2);
                __m256 db3 = _mm256_sub_ps(qbv, v3);
                a0 = _mm256_fmadd_ps(da0, da0, a0);
                a1 = _mm256_fmadd_ps(da1, da1, a1);
                a2 = _mm256_fmadd_ps(da2, da2, a2);
                a3 = _mm256_fmadd_ps(da3, da3, a3);
                b0 = _mm256_fmadd_ps(db0, db0, b0);
                b1 = _mm256_fmadd_ps(db1, db1, b1);
                b2 = _mm256_fmadd_ps(db2, db2, b2);
                b3 = _mm256_fmadd_ps(db3, db3, b3);
            }
            float sa0 = hsum256(a0);
            float sa1 = hsum256(a1);
            float sa2 = hsum256(a2);
            float sa3 = hsum256(a3);
            float sb0 = hsum256(b0);
            float sb1 = hsum256(b1);
            float sb2 = hsum256(b2);
            float sb3 = hsum256(b3);
            for (; j < d; ++j) {
                float va = qa[j];
                float vb = qb[j];
                float ea0 = va - r0[j];
                float ea1 = va - r1[j];
                float ea2 = va - r2[j];
                float ea3 = va - r3[j];
                float eb0 = vb - r0[j];
                float eb1 = vb - r1[j];
                float eb2 = vb - r2[j];
                float eb3 = vb - r3[j];
                sa0 += ea0 * ea0;
                sa1 += ea1 * ea1;
                sa2 += ea2 * ea2;
                sa3 += ea3 * ea3;
                sb0 += eb0 * eb0;
                sb1 += eb1 * eb1;
                sb2 += eb2 * eb2;
                sb3 += eb3 * eb3;
            }
            out[q][i] = sa0;
            out[q][i + 1] = sa1;
            out[q][i + 2] = sa2;
            out[q][i + 3] = sa3;
            out[q + 1][i] = sb0;
            out[q + 1][i + 1] = sb1;
            out[q + 1][i + 2] = sb2;
            out[q + 1][i + 3] = sb3;
        }
        for (; q < q_count; ++q) {
            const float *query = queries[q];
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            std::size_t j = 0;
            for (; j + 8 <= d; j += 8) {
                __m256 qv = _mm256_loadu_ps(query + j);
                __m256 d0 = _mm256_sub_ps(qv, _mm256_loadu_ps(r0 + j));
                __m256 d1 = _mm256_sub_ps(qv, _mm256_loadu_ps(r1 + j));
                __m256 d2 = _mm256_sub_ps(qv, _mm256_loadu_ps(r2 + j));
                __m256 d3 = _mm256_sub_ps(qv, _mm256_loadu_ps(r3 + j));
                a0 = _mm256_fmadd_ps(d0, d0, a0);
                a1 = _mm256_fmadd_ps(d1, d1, a1);
                a2 = _mm256_fmadd_ps(d2, d2, a2);
                a3 = _mm256_fmadd_ps(d3, d3, a3);
            }
            float s0 = hsum256(a0);
            float s1 = hsum256(a1);
            float s2 = hsum256(a2);
            float s3 = hsum256(a3);
            for (; j < d; ++j) {
                float v = query[j];
                float e0 = v - r0[j];
                float e1 = v - r1[j];
                float e2 = v - r2[j];
                float e3 = v - r3[j];
                s0 += e0 * e0;
                s1 += e1 * e1;
                s2 += e2 * e2;
                s3 += e3 * e3;
            }
            out[q][i] = s0;
            out[q][i + 1] = s1;
            out[q][i + 2] = s2;
            out[q][i + 3] = s3;
        }
    }
    for (; i < n; ++i) {
        const float *row = base + i * d;
        for (std::size_t q = 0; q < q_count; ++q)
            out[q][i] = avx2L2Sq(queries[q], row, d);
    }
}

void
avx2DotBatchMulti(const float *const *queries, std::size_t q_count,
                  const float *base, std::size_t n, std::size_t d,
                  float *const *out)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float *r0 = base + i * d;
        const float *r1 = r0 + d;
        const float *r2 = r1 + d;
        const float *r3 = r2 + d;
        _mm_prefetch(reinterpret_cast<const char *>(r3 + d), _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char *>(r3 + 2 * d),
                     _MM_HINT_T0);
        std::size_t q = 0;
        for (; q + 2 <= q_count; q += 2) {
            const float *qa = queries[q];
            const float *qb = queries[q + 1];
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            __m256 b0 = _mm256_setzero_ps();
            __m256 b1 = _mm256_setzero_ps();
            __m256 b2 = _mm256_setzero_ps();
            __m256 b3 = _mm256_setzero_ps();
            std::size_t j = 0;
            for (; j + 8 <= d; j += 8) {
                __m256 qav = _mm256_loadu_ps(qa + j);
                __m256 qbv = _mm256_loadu_ps(qb + j);
                __m256 v0 = _mm256_loadu_ps(r0 + j);
                __m256 v1 = _mm256_loadu_ps(r1 + j);
                __m256 v2 = _mm256_loadu_ps(r2 + j);
                __m256 v3 = _mm256_loadu_ps(r3 + j);
                a0 = _mm256_fmadd_ps(qav, v0, a0);
                a1 = _mm256_fmadd_ps(qav, v1, a1);
                a2 = _mm256_fmadd_ps(qav, v2, a2);
                a3 = _mm256_fmadd_ps(qav, v3, a3);
                b0 = _mm256_fmadd_ps(qbv, v0, b0);
                b1 = _mm256_fmadd_ps(qbv, v1, b1);
                b2 = _mm256_fmadd_ps(qbv, v2, b2);
                b3 = _mm256_fmadd_ps(qbv, v3, b3);
            }
            float sa0 = hsum256(a0);
            float sa1 = hsum256(a1);
            float sa2 = hsum256(a2);
            float sa3 = hsum256(a3);
            float sb0 = hsum256(b0);
            float sb1 = hsum256(b1);
            float sb2 = hsum256(b2);
            float sb3 = hsum256(b3);
            for (; j < d; ++j) {
                float va = qa[j];
                float vb = qb[j];
                sa0 += va * r0[j];
                sa1 += va * r1[j];
                sa2 += va * r2[j];
                sa3 += va * r3[j];
                sb0 += vb * r0[j];
                sb1 += vb * r1[j];
                sb2 += vb * r2[j];
                sb3 += vb * r3[j];
            }
            out[q][i] = sa0;
            out[q][i + 1] = sa1;
            out[q][i + 2] = sa2;
            out[q][i + 3] = sa3;
            out[q + 1][i] = sb0;
            out[q + 1][i + 1] = sb1;
            out[q + 1][i + 2] = sb2;
            out[q + 1][i + 3] = sb3;
        }
        for (; q < q_count; ++q) {
            const float *query = queries[q];
            __m256 a0 = _mm256_setzero_ps();
            __m256 a1 = _mm256_setzero_ps();
            __m256 a2 = _mm256_setzero_ps();
            __m256 a3 = _mm256_setzero_ps();
            std::size_t j = 0;
            for (; j + 8 <= d; j += 8) {
                __m256 qv = _mm256_loadu_ps(query + j);
                a0 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r0 + j), a0);
                a1 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r1 + j), a1);
                a2 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r2 + j), a2);
                a3 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r3 + j), a3);
            }
            float s0 = hsum256(a0);
            float s1 = hsum256(a1);
            float s2 = hsum256(a2);
            float s3 = hsum256(a3);
            for (; j < d; ++j) {
                float v = query[j];
                s0 += v * r0[j];
                s1 += v * r1[j];
                s2 += v * r2[j];
                s3 += v * r3[j];
            }
            out[q][i] = s0;
            out[q][i + 1] = s1;
            out[q][i + 2] = s2;
            out[q][i + 3] = s3;
        }
    }
    for (; i < n; ++i) {
        const float *row = base + i * d;
        for (std::size_t q = 0; q < q_count; ++q)
            out[q][i] = avx2Dot(queries[q], row, d);
    }
}

/*
 * Multi-query fused SQ8 scans: each code row is dequantized ONCE into a
 * small reusable buffer (for L2 the full reconstruction product
 * w[j] = b[j]*code[j], for IP the widened floats), then every query in
 * the batch streams that buffer from L1. This drops the per-query inner
 * loop from dequant+arithmetic (~7 uops per 8 lanes) to load+sub+fma
 * (~3), which is where the batched scan's >2x per-query win comes from.
 *
 * Bit-parity with the single-query kernels: vector stores/loads are
 * exact, the accumulator pattern per query (4 chains at j+32, chain 0 at
 * j+8, hsum tree) is identical, and the scalar tail recomputes from
 * b/code with the same expression the single kernel uses rather than
 * reading the buffer, so any compiler contraction applies equally.
 */
void
avx2Sq8ScanL2Multi(const float *const *a, const float *b,
                   std::size_t q_count, const std::uint8_t *codes,
                   std::size_t n, std::size_t d, float *const *out)
{
    if (q_count == 1) {
        avx2Sq8ScanL2(a[0], b, codes, n, d, out[0]);
        return;
    }
    std::vector<float> dequant(d); // w[j] = b[j]*code[j] for current row
    float *w = dequant.data();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        _mm_prefetch(reinterpret_cast<const char *>(code + 2 * d),
                     _MM_HINT_T0);
        std::size_t j = 0;
        for (; j + 8 <= d; j += 8) {
            _mm256_storeu_ps(w + j,
                             _mm256_mul_ps(_mm256_loadu_ps(b + j),
                                           loadCodes8(code + j)));
        }
        for (std::size_t q = 0; q < q_count; ++q) {
            const float *aq = a[q];
            __m256 acc0 = _mm256_setzero_ps();
            __m256 acc1 = _mm256_setzero_ps();
            __m256 acc2 = _mm256_setzero_ps();
            __m256 acc3 = _mm256_setzero_ps();
            j = 0;
            for (; j + 32 <= d; j += 32) {
                __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(aq + j),
                                          _mm256_loadu_ps(w + j));
                __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(aq + j + 8),
                                          _mm256_loadu_ps(w + j + 8));
                __m256 d2 = _mm256_sub_ps(_mm256_loadu_ps(aq + j + 16),
                                          _mm256_loadu_ps(w + j + 16));
                __m256 d3 = _mm256_sub_ps(_mm256_loadu_ps(aq + j + 24),
                                          _mm256_loadu_ps(w + j + 24));
                acc0 = _mm256_fmadd_ps(d0, d0, acc0);
                acc1 = _mm256_fmadd_ps(d1, d1, acc1);
                acc2 = _mm256_fmadd_ps(d2, d2, acc2);
                acc3 = _mm256_fmadd_ps(d3, d3, acc3);
            }
            for (; j + 8 <= d; j += 8) {
                __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(aq + j),
                                          _mm256_loadu_ps(w + j));
                acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            }
            float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                              _mm256_add_ps(acc2, acc3)));
            for (; j < d; ++j) {
                float diff = aq[j] - b[j] * static_cast<float>(code[j]);
                acc += diff * diff;
            }
            out[q][i] = acc;
        }
    }
}

void
avx2Sq8ScanIpMulti(const float *const *a, const float *biases,
                   std::size_t q_count, const std::uint8_t *codes,
                   std::size_t n, std::size_t d, float *const *out)
{
    if (q_count == 1) {
        avx2Sq8ScanIp(a[0], biases[0], codes, n, d, out[0]);
        return;
    }
    std::vector<float> dequant(d); // float(code[j]) for the current row
    float *f = dequant.data();
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t *code = codes + i * d;
        _mm_prefetch(reinterpret_cast<const char *>(code + 2 * d),
                     _MM_HINT_T0);
        std::size_t j = 0;
        for (; j + 8 <= d; j += 8)
            _mm256_storeu_ps(f + j, loadCodes8(code + j));
        for (std::size_t q = 0; q < q_count; ++q) {
            const float *aq = a[q];
            __m256 acc0 = _mm256_setzero_ps();
            __m256 acc1 = _mm256_setzero_ps();
            __m256 acc2 = _mm256_setzero_ps();
            __m256 acc3 = _mm256_setzero_ps();
            j = 0;
            for (; j + 32 <= d; j += 32) {
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(aq + j),
                                       _mm256_loadu_ps(f + j), acc0);
                acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(aq + j + 8),
                                       _mm256_loadu_ps(f + j + 8), acc1);
                acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(aq + j + 16),
                                       _mm256_loadu_ps(f + j + 16), acc2);
                acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(aq + j + 24),
                                       _mm256_loadu_ps(f + j + 24), acc3);
            }
            for (; j + 8 <= d; j += 8) {
                acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(aq + j),
                                       _mm256_loadu_ps(f + j), acc0);
            }
            float acc = hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                              _mm256_add_ps(acc2, acc3)));
            for (; j < d; ++j)
                acc += aq[j] * static_cast<float>(code[j]);
            out[q][i] = -(biases[q] + acc);
        }
    }
}

/*
 * Transposed-LUT multi-query accumulation (PQ ADC batch scan): the
 * chunk-major transposed layout turns each code byte into one contiguous
 * 8-lane load, replacing the per-query scan's m dependent scalar gathers
 * with m vector adds, and the code list is swept once per chunk so the
 * chunk's compact table block stays cache-resident. Two codes run per
 * iteration to keep enough independent loads in flight. Lane t
 * accumulates ascending-sub adds starting at zero — bitwise identical to
 * the scalar arm (pure additions, no products).
 */
void
avx2LutAccumMulti(const float *tlut, std::size_t entries,
                  std::size_t q_count, const std::uint8_t *codes,
                  std::size_t n, std::size_t m, float *const *out)
{
    const std::size_t chunks = (q_count + 7) / 8;
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
        const float *table = tlut + chunk * m * entries * 8;
        const std::size_t q0 = chunk * 8;
        const std::size_t lanes =
            q_count - q0 < 8 ? q_count - q0 : std::size_t{8};
        std::size_t i = 0;
        for (; i + 2 <= n; i += 2) {
            const std::uint8_t *c0 = codes + i * m;
            const std::uint8_t *c1 = c0 + m;
            _mm_prefetch(reinterpret_cast<const char *>(c1 + m),
                         _MM_HINT_T0);
            __m256 acc0 = _mm256_setzero_ps();
            __m256 acc1 = _mm256_setzero_ps();
            for (std::size_t sub = 0; sub < m; ++sub) {
                const float *base = table + sub * entries * 8;
                acc0 = _mm256_add_ps(
                    acc0, _mm256_loadu_ps(base + c0[sub] * 8));
                acc1 = _mm256_add_ps(
                    acc1, _mm256_loadu_ps(base + c1[sub] * 8));
            }
            float l0[8];
            float l1[8];
            _mm256_storeu_ps(l0, acc0);
            _mm256_storeu_ps(l1, acc1);
            for (std::size_t t = 0; t < lanes; ++t) {
                out[q0 + t][i] = l0[t];
                out[q0 + t][i + 1] = l1[t];
            }
        }
        for (; i < n; ++i) {
            const std::uint8_t *code = codes + i * m;
            __m256 acc = _mm256_setzero_ps();
            for (std::size_t sub = 0; sub < m; ++sub) {
                acc = _mm256_add_ps(
                    acc, _mm256_loadu_ps(table + (sub * entries +
                                                  code[sub]) *
                                                     8));
            }
            float l[8];
            _mm256_storeu_ps(l, acc);
            for (std::size_t t = 0; t < lanes; ++t)
                out[q0 + t][i] = l[t];
        }
    }
}

const KernelTable kAvx2Table = {
    "avx2",
    avx2L2Sq,
    avx2Dot,
    avx2L2SqBatch,
    avx2DotBatch,
    avx2Sq8ScanL2,
    avx2Sq8ScanIp,
    avx2L2SqBatchMulti,
    avx2DotBatchMulti,
    avx2Sq8ScanL2Multi,
    avx2Sq8ScanIpMulti,
    avx2LutAccumMulti,
};

} // namespace

namespace detail {

const KernelTable &
avx2TableImpl()
{
    return kAvx2Table;
}

} // namespace detail

} // namespace simd
} // namespace vecstore
} // namespace hermes
