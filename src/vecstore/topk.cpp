#include "vecstore/topk.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "util/logging.hpp"

namespace hermes {
namespace vecstore {

namespace {

bool
heapLess(const Hit &a, const Hit &b)
{
    // Max-heap on score; ties broken on id for determinism.
    if (a.score != b.score)
        return a.score < b.score;
    return a.id < b.id;
}

} // namespace

TopK::TopK(std::size_t k) : k_(k)
{
    HERMES_ASSERT(k_ >= 1, "top-k requires k >= 1");
    heap_.reserve(k_);
}

void
TopK::push(VecId id, float score)
{
    if (heap_.size() < k_) {
        heap_.push_back({id, score});
        std::push_heap(heap_.begin(), heap_.end(), heapLess);
        return;
    }
    if (score >= heap_.front().score)
        return;
    std::pop_heap(heap_.begin(), heap_.end(), heapLess);
    heap_.back() = {id, score};
    std::push_heap(heap_.begin(), heap_.end(), heapLess);
}

float
TopK::worst() const
{
    if (heap_.size() < k_)
        return std::numeric_limits<float>::max();
    return heap_.front().score;
}

HitList
TopK::take()
{
    std::sort_heap(heap_.begin(), heap_.end(), heapLess);
    HitList out = std::move(heap_);
    heap_.clear();
    return out;
}

HitList
mergeHitLists(const std::vector<HitList> &lists, std::size_t k)
{
    std::unordered_map<VecId, float> best;
    for (const auto &list : lists) {
        for (const auto &hit : list) {
            auto [it, inserted] = best.emplace(hit.id, hit.score);
            if (!inserted && hit.score < it->second)
                it->second = hit.score;
        }
    }
    TopK selector(std::max<std::size_t>(k, 1));
    for (const auto &[id, score] : best)
        selector.push(id, score);
    HitList merged = selector.take();
    if (merged.size() > k)
        merged.resize(k);
    return merged;
}

} // namespace vecstore
} // namespace hermes
