#include "vecstore/topk.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"

namespace hermes {
namespace vecstore {

namespace {

bool
heapLess(const Hit &a, const Hit &b)
{
    // Max-heap on score; ties broken on id for determinism.
    if (a.score != b.score)
        return a.score < b.score;
    return a.id < b.id;
}

} // namespace

TopK::TopK(std::size_t k) : k_(k)
{
    HERMES_ASSERT(k_ >= 1, "top-k requires k >= 1");
    heap_.reserve(k_);
}

void
TopK::push(VecId id, float score)
{
    if (heap_.size() < k_) {
        heap_.push_back({id, score});
        std::push_heap(heap_.begin(), heap_.end(), heapLess);
        return;
    }
    if (score >= heap_.front().score)
        return;
    std::pop_heap(heap_.begin(), heap_.end(), heapLess);
    heap_.back() = {id, score};
    std::push_heap(heap_.begin(), heap_.end(), heapLess);
}

void
TopK::pushBatch(const VecId *ids, const float *scores, std::size_t n)
{
    std::size_t i = 0;
    // Fill phase: accept until the heap holds k candidates.
    for (; i < n && heap_.size() < k_; ++i)
        push(ids[i], scores[i]);
    if (heap_.size() < k_)
        return;
    // Steady state: reject against a register-cached bound; the bound
    // only tightens on an accepted candidate.
    float bound = heap_.front().score;
    for (; i < n; ++i) {
        float score = scores[i];
        if (score >= bound)
            continue;
        std::pop_heap(heap_.begin(), heap_.end(), heapLess);
        heap_.back() = {ids[i], score};
        std::push_heap(heap_.begin(), heap_.end(), heapLess);
        bound = heap_.front().score;
    }
}

float
TopK::worst() const
{
    if (heap_.size() < k_)
        return std::numeric_limits<float>::max();
    return heap_.front().score;
}

HitList
TopK::take()
{
    std::sort_heap(heap_.begin(), heap_.end(), heapLess);
    HitList out = std::move(heap_);
    heap_.clear();
    return out;
}

HitList
mergeHitLists(const std::vector<HitList> &lists, std::size_t k)
{
    std::size_t total = 0;
    for (const auto &list : lists)
        total += list.size();

    // Flatten, then sort by (id, score) so a linear pass keeps the best
    // score per id. Deterministic (no hash order) and allocation-light
    // (one flat vector) compared to an unordered_map + re-heap — this
    // runs once per query in the broker merge phase.
    HitList all;
    all.reserve(total);
    for (const auto &list : lists)
        all.insert(all.end(), list.begin(), list.end());

    std::sort(all.begin(), all.end(), [](const Hit &a, const Hit &b) {
        if (a.id != b.id)
            return a.id < b.id;
        return a.score < b.score;
    });
    std::size_t write = 0;
    for (std::size_t read = 0; read < all.size(); ++read) {
        if (write > 0 && all[read].id == all[write - 1].id)
            continue;
        all[write++] = all[read];
    }
    all.resize(write);

    std::sort(all.begin(), all.end(), [](const Hit &a, const Hit &b) {
        if (a.score != b.score)
            return a.score < b.score;
        return a.id < b.id;
    });
    if (all.size() > k)
        all.resize(k);
    return all;
}

} // namespace vecstore
} // namespace hermes
