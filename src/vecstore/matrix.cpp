#include "vecstore/matrix.hpp"

#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace hermes {
namespace vecstore {

namespace {
constexpr std::uint32_t kMatrixVersion = 1;
} // namespace

Matrix::Matrix(std::size_t dim) : dim_(dim) {}

Matrix::Matrix(std::size_t rows, std::size_t dim)
    : dim_(dim), data_(rows * dim, 0.f)
{
}

VecView
Matrix::row(std::size_t i) const
{
    HERMES_ASSERT(i < rows(), "matrix row ", i, " out of range ", rows());
    return VecView(data_.data() + i * dim_, dim_);
}

MutVecView
Matrix::row(std::size_t i)
{
    HERMES_ASSERT(i < rows(), "matrix row ", i, " out of range ", rows());
    return MutVecView(data_.data() + i * dim_, dim_);
}

void
Matrix::append(VecView v)
{
    HERMES_ASSERT(v.size() == dim_, "row dim ", v.size(),
                  " does not match matrix dim ", dim_);
    data_.insert(data_.end(), v.begin(), v.end());
}

void
Matrix::appendRows(const float *src, std::size_t n)
{
    data_.insert(data_.end(), src, src + n * dim_);
}

void
Matrix::resizeRows(std::size_t rows)
{
    data_.resize(rows * dim_, 0.f);
}

void
Matrix::reserveRows(std::size_t rows)
{
    data_.reserve(rows * dim_);
}

Matrix
Matrix::gather(const std::vector<std::size_t> &indices) const
{
    Matrix out(dim_);
    out.reserveRows(indices.size());
    for (std::size_t idx : indices)
        out.append(row(idx));
    return out;
}

void
Matrix::save(const std::string &path) const
{
    util::BinaryWriter w(path, "HMAT", kMatrixVersion);
    w.write<std::uint64_t>(dim_);
    w.writeVector(data_);
    HERMES_ASSERT(w.good(), "matrix save failed: ", path);
}

Matrix
Matrix::load(const std::string &path)
{
    util::BinaryReader r(path, "HMAT", kMatrixVersion);
    auto dim = r.read<std::uint64_t>();
    Matrix m(static_cast<std::size_t>(dim));
    m.data_ = r.readVector<float>();
    HERMES_ASSERT(dim == 0 || m.data_.size() % dim == 0,
                  "corrupt matrix payload in ", path);
    return m;
}

} // namespace vecstore
} // namespace hermes
