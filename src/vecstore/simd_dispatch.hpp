/**
 * @file
 * Runtime-dispatched SIMD kernel table.
 *
 * The scan path (IVF list scans, flat search, K-means assignment, ADC
 * table construction) funnels through a small set of dense kernels. Each
 * kernel exists in a portable scalar form and, when the build and the CPU
 * allow it, an AVX2/FMA form compiled in its own translation unit with
 * -mavx2 -mfma. A table of function pointers is selected once at startup:
 *
 *   - compile gate: the AVX2 TU is built only when CMake detects an x86-64
 *     target and a compiler accepting -mavx2 -mfma (HERMES_ENABLE_AVX2);
 *   - runtime gate: the AVX2 table is offered only when cpuid reports both
 *     AVX2 and FMA, so a generic build still runs on any x86-64 machine;
 *   - override: HERMES_SIMD=scalar|avx2 forces an arm (scalar always
 *     works; an unavailable forced arm warns and falls back to scalar).
 *
 * Everything else in the repo calls the wrappers in vecstore/distance.hpp
 * or the batched codec scans; only kernels and tests should need this
 * header directly.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace hermes {
namespace vecstore {
namespace simd {

/**
 * One dispatch arm: every hot dense kernel as a free function pointer.
 *
 * Batched kernels score one query against n contiguous row-major rows.
 * The SQ8 kernels fuse dequantization into the distance loop; see
 * scalar_codec.cpp for the per-query precomputation that produces their
 * operands:
 *
 *   sq8_scan_l2: out[i] = sum_j (a[j] - b[j] * codes[i*d + j])^2
 *   sq8_scan_ip: out[i] = -(bias + sum_j a[j] * codes[i*d + j])
 */
struct KernelTable
{
    /** Arm name: "scalar" or "avx2". */
    const char *name;

    float (*l2_sq)(const float *a, const float *b, std::size_t d);
    float (*dot)(const float *a, const float *b, std::size_t d);

    /** out[i] = l2Sq(query, base + i*d) for i in [0, n). */
    void (*l2_sq_batch)(const float *query, const float *base, std::size_t n,
                        std::size_t d, float *out);

    /** out[i] = dot(query, base + i*d) for i in [0, n). */
    void (*dot_batch)(const float *query, const float *base, std::size_t n,
                      std::size_t d, float *out);

    void (*sq8_scan_l2)(const float *a, const float *b,
                        const std::uint8_t *codes, std::size_t n,
                        std::size_t d, float *out);

    void (*sq8_scan_ip)(const float *a, float bias,
                        const std::uint8_t *codes, std::size_t n,
                        std::size_t d, float *out);

    /*
     * Multi-query tiles: score q_count queries against the same n rows in
     * one pass, so each row is streamed from memory once per *batch*
     * instead of once per query. Per (query, row) pair the reduction
     * order is identical to the single-query kernels above — the parity
     * tests assert bitwise equality, which is what lets the list-major
     * IVF path guarantee bit-identical results to the per-query path.
     */

    /** out[q][i] = l2Sq(queries[q], base + i*d) for q < q_count, i < n. */
    void (*l2_sq_batch_multi)(const float *const *queries,
                              std::size_t q_count, const float *base,
                              std::size_t n, std::size_t d,
                              float *const *out);

    /** out[q][i] = dot(queries[q], base + i*d) for q < q_count, i < n. */
    void (*dot_batch_multi)(const float *const *queries, std::size_t q_count,
                            const float *base, std::size_t n, std::size_t d,
                            float *const *out);

    /** Multi-query fused SQ8 L2: per-query a[] operands, shared b[]. */
    void (*sq8_scan_l2_multi)(const float *const *a, const float *b,
                              std::size_t q_count, const std::uint8_t *codes,
                              std::size_t n, std::size_t d,
                              float *const *out);

    /** Multi-query fused SQ8 IP: per-query a[] operands and biases. */
    void (*sq8_scan_ip_multi)(const float *const *a, const float *biases,
                              std::size_t q_count, const std::uint8_t *codes,
                              std::size_t n, std::size_t d,
                              float *const *out);

    /**
     * Multi-query transposed-LUT accumulation (the PQ/OPQ ADC batch
     * scan). The caller lays the per-query lookup tables out in padded
     * chunk-major transposed form: queries are grouped into chunks of 8
     * lanes (ceil(q_count/8) chunks, trailing lanes zero-padded), and
     *
     *   tlut[(chunk*m + sub)*entries*8 + c*8 + t]
     *
     * holds query (chunk*8 + t)'s table entry for subquantizer sub, code
     * byte c. One code byte then resolves to one contiguous 8-float row,
     * and each chunk's table is a compact m*entries*8-float block that
     * stays cache-resident while the kernel sweeps the code list once
     * per chunk:
     *
     *   out[q][i] = sum_{sub<m} table of q's chunk at
     *               (sub*entries + codes[i*m+sub])*8 + (q%8)
     *
     * Every lane is a single ascending-sub add chain (no products), so
     * results are bitwise identical across arms and to the per-query
     * gather loop in the codec's single-query scan.
     */
    void (*lut_accum_multi)(const float *tlut, std::size_t entries,
                            std::size_t q_count, const std::uint8_t *codes,
                            std::size_t n, std::size_t m,
                            float *const *out);
};

/** Portable scalar arm (always available; identical math to the seed). */
const KernelTable &scalarKernels();

/**
 * AVX2/FMA arm, or nullptr when the TU was not built or the running CPU
 * lacks AVX2/FMA.
 */
const KernelTable *avx2Kernels();

/**
 * The arm selected at startup (cpuid + HERMES_SIMD override). The first
 * call freezes the choice; subsequent calls are one relaxed atomic load.
 */
const KernelTable &active();

/** Name of the active arm ("scalar" or "avx2"), for banners and logs. */
const char *activeIsa();

/**
 * Test hook: swap the active arm by name ("scalar" | "avx2").
 * Not thread-safe with respect to in-flight kernels — call only from
 * single-threaded test code. @return false (no change) if the requested
 * arm is unavailable.
 */
bool forceIsaForTesting(const char *name);

namespace detail {

/**
 * Defined in distance_avx2.cpp when the AVX2 TU is compiled in; returns
 * the AVX2 table unconditionally (callers must check cpuid first).
 */
const KernelTable &avx2TableImpl();

} // namespace detail

} // namespace simd
} // namespace vecstore
} // namespace hermes
