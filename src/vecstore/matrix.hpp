/**
 * @file
 * Row-major float matrix used for embedding storage.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "vecstore/types.hpp"

namespace hermes {
namespace vecstore {

/**
 * Dense row-major matrix of float32 embeddings.
 *
 * Row = one embedding. Storage is contiguous so kernels can stream rows.
 */
class Matrix
{
  public:
    /** Empty matrix with fixed dimensionality. */
    explicit Matrix(std::size_t dim = 0);

    /** Pre-sized matrix of @p rows x @p dim zeros. */
    Matrix(std::size_t rows, std::size_t dim);

    std::size_t rows() const { return dim_ ? data_.size() / dim_ : 0; }
    std::size_t dim() const { return dim_; }
    bool empty() const { return data_.empty(); }

    /** Read-only view of row @p i. */
    VecView row(std::size_t i) const;

    /** Mutable view of row @p i. */
    MutVecView row(std::size_t i);

    /** Raw contiguous storage pointer. */
    const float *data() const { return data_.data(); }
    float *data() { return data_.data(); }

    /** Append one row (must match dim). */
    void append(VecView v);

    /** Append @p n rows from a contiguous buffer. */
    void appendRows(const float *src, std::size_t n);

    /** Resize to @p rows rows, zero-filling new rows. */
    void resizeRows(std::size_t rows);

    /** Reserve capacity for @p rows rows. */
    void reserveRows(std::size_t rows);

    /** Bytes of payload storage. */
    std::size_t memoryBytes() const { return data_.size() * sizeof(float); }

    /**
     * Gather a sub-matrix of the given row indices.
     */
    Matrix gather(const std::vector<std::size_t> &indices) const;

    /** Persist to a binary file. */
    void save(const std::string &path) const;

    /** Load from a binary file written by save(). */
    static Matrix load(const std::string &path);

  private:
    std::size_t dim_;
    std::vector<float> data_;
};

} // namespace vecstore
} // namespace hermes
