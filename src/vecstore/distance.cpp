#include "vecstore/distance.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace hermes {
namespace vecstore {

const char *
metricName(Metric m)
{
    switch (m) {
      case Metric::L2:           return "L2";
      case Metric::InnerProduct: return "IP";
    }
    return "?";
}

float
l2Sq(const float *a, const float *b, std::size_t d)
{
    // Four accumulators keep the loop free of a serial dependency chain so
    // the compiler can vectorize it.
    float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
    std::size_t i = 0;
    for (; i + 4 <= d; i += 4) {
        float d0 = a[i] - b[i];
        float d1 = a[i + 1] - b[i + 1];
        float d2 = a[i + 2] - b[i + 2];
        float d3 = a[i + 3] - b[i + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    for (; i < d; ++i) {
        float diff = a[i] - b[i];
        acc0 += diff * diff;
    }
    return acc0 + acc1 + acc2 + acc3;
}

float
dot(const float *a, const float *b, std::size_t d)
{
    float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
    std::size_t i = 0;
    for (; i + 4 <= d; i += 4) {
        acc0 += a[i] * b[i];
        acc1 += a[i + 1] * b[i + 1];
        acc2 += a[i + 2] * b[i + 2];
        acc3 += a[i + 3] * b[i + 3];
    }
    for (; i < d; ++i)
        acc0 += a[i] * b[i];
    return acc0 + acc1 + acc2 + acc3;
}

float
normSq(const float *a, std::size_t d)
{
    return dot(a, a, d);
}

float
cosine(const float *a, const float *b, std::size_t d)
{
    float na = normSq(a, d);
    float nb = normSq(b, d);
    if (na <= 0.f || nb <= 0.f)
        return 0.f;
    return dot(a, b, d) / std::sqrt(na * nb);
}

float
distance(Metric metric, const float *a, const float *b, std::size_t d)
{
    switch (metric) {
      case Metric::L2:
        return l2Sq(a, b, d);
      case Metric::InnerProduct:
        return -dot(a, b, d);
    }
    HERMES_PANIC("unknown metric");
}

void
distanceBatch(Metric metric, const float *query, const float *base,
              std::size_t n, std::size_t d, float *out)
{
    if (metric == Metric::L2) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = l2Sq(query, base + i * d, d);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = -dot(query, base + i * d, d);
    }
}

void
normalize(float *a, std::size_t d)
{
    float n = normSq(a, d);
    if (n <= 0.f)
        return;
    float inv = 1.f / std::sqrt(n);
    for (std::size_t i = 0; i < d; ++i)
        a[i] *= inv;
}

} // namespace vecstore
} // namespace hermes
