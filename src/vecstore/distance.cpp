#include "vecstore/distance.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "vecstore/simd_dispatch.hpp"

namespace hermes {
namespace vecstore {

const char *
metricName(Metric m)
{
    switch (m) {
      case Metric::L2:           return "L2";
      case Metric::InnerProduct: return "IP";
    }
    return "?";
}

float
l2Sq(const float *a, const float *b, std::size_t d)
{
    return simd::active().l2_sq(a, b, d);
}

float
dot(const float *a, const float *b, std::size_t d)
{
    return simd::active().dot(a, b, d);
}

float
normSq(const float *a, std::size_t d)
{
    return simd::active().dot(a, a, d);
}

float
cosine(const float *a, const float *b, std::size_t d)
{
    const auto &kt = simd::active();
    float na = kt.dot(a, a, d);
    float nb = kt.dot(b, b, d);
    if (na <= 0.f || nb <= 0.f)
        return 0.f;
    return kt.dot(a, b, d) / std::sqrt(na * nb);
}

float
distance(Metric metric, const float *a, const float *b, std::size_t d)
{
    switch (metric) {
      case Metric::L2:
        return simd::active().l2_sq(a, b, d);
      case Metric::InnerProduct:
        return -simd::active().dot(a, b, d);
    }
    HERMES_PANIC("unknown metric");
}

void
l2SqBatch(const float *query, const float *base, std::size_t n,
          std::size_t d, float *out)
{
    simd::active().l2_sq_batch(query, base, n, d, out);
}

void
dotBatch(const float *query, const float *base, std::size_t n, std::size_t d,
         float *out)
{
    simd::active().dot_batch(query, base, n, d, out);
}

void
distanceBatch(Metric metric, const float *query, const float *base,
              std::size_t n, std::size_t d, float *out)
{
    const auto &kt = simd::active();
    if (metric == Metric::L2) {
        kt.l2_sq_batch(query, base, n, d, out);
        return;
    }
    kt.dot_batch(query, base, n, d, out);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = -out[i];
}

void
l2SqBatchMulti(const float *const *queries, std::size_t q_count,
               const float *base, std::size_t n, std::size_t d,
               float *const *out)
{
    simd::active().l2_sq_batch_multi(queries, q_count, base, n, d, out);
}

void
dotBatchMulti(const float *const *queries, std::size_t q_count,
              const float *base, std::size_t n, std::size_t d,
              float *const *out)
{
    simd::active().dot_batch_multi(queries, q_count, base, n, d, out);
}

void
distanceBatchMulti(Metric metric, const float *const *queries,
                   std::size_t q_count, const float *base, std::size_t n,
                   std::size_t d, float *const *out)
{
    const auto &kt = simd::active();
    if (metric == Metric::L2) {
        kt.l2_sq_batch_multi(queries, q_count, base, n, d, out);
        return;
    }
    kt.dot_batch_multi(queries, q_count, base, n, d, out);
    for (std::size_t q = 0; q < q_count; ++q) {
        float *o = out[q];
        for (std::size_t i = 0; i < n; ++i)
            o[i] = -o[i];
    }
}

void
normalize(float *a, std::size_t d)
{
    float n = normSq(a, d);
    if (n <= 0.f)
        return;
    float inv = 1.f / std::sqrt(n);
    for (std::size_t i = 0; i < d; ++i)
        a[i] *= inv;
}

} // namespace vecstore
} // namespace hermes
