/**
 * @file
 * Fold Chrome trace dumps into flame-graph stacks.
 *
 * Input is any mix of TraceRecorder dumps (serving_demo --trace-out,
 * hermes_shard --trace-out, a /trace.json scrape) and merged fleet
 * traces from hermes_trace_merge. Ancestry is reconstructed from the
 * span identity each event carries (span_id/parent_span_id), so a
 * merged trace folds across processes: broker.query;rpc.search;
 * shard.search;node.search. Weights are self-time microseconds.
 *
 * Usage:
 *   hermes_flame --trace=FILE [--trace=FILE]...
 *                [--endpoint=host:port]... [--out=FILE]
 *
 * --endpoint fetches /trace.json from a live obs exporter instead of
 * (or alongside) files. Output goes to --out or stdout and loads
 * directly in speedscope (https://speedscope.app) or through
 * flamegraph.pl.
 *
 * Exit status: 0 on success (warnings on stderr), 1 when no input
 * parses or the output cannot be written, 2 on bad usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "serve/trace_merge.hpp"

namespace {

const char *
matchOption(const char *arg, const char *name)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=')
        return arg + len + 1;
    return nullptr;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

/** "host:port" → parts; false on anything unparseable. */
bool
splitEndpoint(const std::string &endpoint, std::string &host, int &port)
{
    std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0)
        return false;
    host = endpoint.substr(0, colon);
    port = std::atoi(endpoint.c_str() + colon + 1);
    return port > 0 && port <= 65535;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hermes;

    std::vector<std::string> trace_files;
    std::vector<std::string> endpoints;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (const char *v = matchOption(argv[i], "--trace"))
            trace_files.push_back(v);
        else if (const char *v = matchOption(argv[i], "--endpoint"))
            endpoints.push_back(v);
        else if (const char *v = matchOption(argv[i], "--out"))
            out_path = v;
        else {
            std::fprintf(stderr, "unknown option: %s\n", argv[i]);
            return 2;
        }
    }
    if (trace_files.empty() && endpoints.empty()) {
        std::fprintf(stderr,
                     "usage: hermes_flame --trace=FILE "
                     "[--trace=FILE]... [--endpoint=host:port]... "
                     "[--out=FILE]\n");
        return 2;
    }

    std::vector<serve::TraceDumpInput> dumps;
    for (const auto &path : trace_files) {
        serve::TraceDumpInput dump;
        dump.source = path;
        if (!readFile(path, dump.json)) {
            std::fprintf(stderr,
                         "warning: cannot read %s; skipping\n",
                         path.c_str());
            continue;
        }
        dumps.push_back(std::move(dump));
    }
    for (const auto &endpoint : endpoints) {
        std::string host;
        int port = 0;
        if (!splitEndpoint(endpoint, host, port)) {
            std::fprintf(stderr, "error: bad endpoint %s\n",
                         endpoint.c_str());
            return 2;
        }
        serve::TraceDumpInput dump;
        dump.source = endpoint;
        if (!obs::httpGet(host, static_cast<std::uint16_t>(port),
                          "/trace.json", &dump.json)) {
            std::fprintf(stderr,
                         "warning: fetch of %s/trace.json failed; "
                         "skipping\n",
                         endpoint.c_str());
            continue;
        }
        dumps.push_back(std::move(dump));
    }

    serve::FlameFoldResult fold = serve::foldStacks(dumps);
    for (const auto &warning : fold.warnings)
        std::fprintf(stderr, "warning: %s\n", warning.c_str());
    if (!fold.ok) {
        std::fprintf(stderr, "error: %s\n", fold.error.c_str());
        return 1;
    }

    if (out_path.empty()) {
        std::fputs(fold.folded.c_str(), stdout);
    } else {
        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        if (!out || !(out << fold.folded)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
    }
    std::fprintf(stderr,
                 "hermes_flame folded %zu spans into %zu stacks%s%s\n",
                 fold.spans, fold.stacks,
                 out_path.empty() ? "" : " -> ",
                 out_path.c_str());
    return 0;
}
