/**
 * @file
 * Shard-per-process serving: builds one cluster of the deterministic
 * demo store and serves it over the framed RPC protocol (ShardServer).
 *
 * A fleet is N of these plus a broker wired with --remote-nodes (see
 * serving_demo): every process regenerates the same corpus from the
 * same seed and partitions it with the same config, then keeps only its
 * --cluster slice — so the fleet's union is bit-identical to the
 * in-process store without any index files changing hands. Corpus and
 * partition flags must therefore match across the fleet and the broker.
 *
 * The same determinism makes replication free: two hermes_shard
 * processes with identical corpus flags and the same --cluster serve
 * bit-identical shards, so a broker may list both as replicas of that
 * cluster (serving_demo --remote-nodes=...@cluster) and route/hedge
 * between them without any result drift. --replica=N is a purely
 * cosmetic ordinal that distinguishes the copies in logs, the ready
 * line and /shard.
 *
 * Usage: hermes_shard --cluster=N [--replica=N] [--port=N] [--bind=ADDR]
 *                     [--index-file=PATH] [--index-heap=0|1]
 *                     [--prefault=0|1]
 *                     [--num-docs=N] [--dim=N] [--topics=N]
 *                     [--clusters=N] [--nlist=N]
 *                     [--batch-window-us=N] [--max-batch=N]
 *                     [--fail-prob=P] [--drop-prob=P] [--delay-ms=MS]
 *                     [--http-port=PORT]
 *                     [--trace-out=FILE] [--trace-sample=N]
 *                     [--metrics-json=FILE] [--perf=0|1]
 *
 * --index-file=PATH skips the in-process corpus + partition build and
 * serves a pre-built v3 index file instead: the file is opened as a
 * zero-copy mmap view (millisecond cold starts — the "build once,
 * serve many" path; see hermes_build_index). --index-heap=1 copies the
 * file into heap storage instead, --prefault=1 touches every mapped
 * page up front so first-query latency never pays demand faults. The
 * corpus/partition flags are ignored in this mode; --cluster only
 * labels the ready line, /shard and traces.
 *
 * Prints one machine-parseable line once serving:
 *   hermes_shard ready cluster=<c> vectors=<n> port=<p>
 * (with " replica=<r>" appended when --replica is nonzero — new fields
 * only ever append so existing launchers keep matching), then runs
 * until SIGTERM/SIGINT. --http-port adds the obs exporter
 * (/healthz for liveness probes, /metrics, /trace.json with the shard's
 * span dump tagged by cluster, plus /shard with the node's counters),
 * so a supervisor can watch recovery after a restart. --perf=1 (or
 * HERMES_PERF=1) arms the perf_event/RAPL samplers; the exporter's
 * /perf route reports per-phase scan counters and measured energy.
 *
 * Tracing: --trace-sample=N (or HERMES_TRACE_SAMPLE) enables the span
 * recorder before the server starts, so remote trace contexts adopted
 * from a v2 broker are recorded from the first request. --trace-out
 * (or HERMES_TRACE_OUT) writes the dump — tagged with this shard's
 * cluster id so hermes_trace_merge can clock-align it — on the
 * SIGINT/SIGTERM drain path; --metrics-json (or HERMES_METRICS_JSON)
 * does the same for the registry.
 */

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hermes/hermes.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

const char *
matchOption(const char *arg, const char *name)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=')
        return arg + len + 1;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hermes;
    util::setQuiet(true);

    long cluster = -1;
    long replica = 0;
    int port = 0;
    std::string bind_address = "127.0.0.1";
    std::string index_file;
    bool index_heap = false;
    bool prefault = false;
    std::size_t num_docs = 20000;
    std::size_t dim = 32;
    std::size_t topics = 30;
    std::size_t clusters = 10;
    std::size_t nlist = 0;
    double batch_window_us = 0.0;
    std::size_t max_batch = 0;
    double fail_prob = 0.0;
    double drop_prob = 0.0;
    double delay_ms = 0.0;
    int http_port = -1;
    std::string trace_out;
    long trace_sample = 0;
    std::string metrics_json;
    bool perf_flag = false;
    for (int i = 1; i < argc; ++i) {
        if (const char *v = matchOption(argv[i], "--cluster"))
            cluster = std::strtol(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--replica"))
            replica = std::strtol(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--port"))
            port = std::atoi(v);
        else if (const char *v = matchOption(argv[i], "--bind"))
            bind_address = v;
        else if (const char *v = matchOption(argv[i], "--index-file"))
            index_file = v;
        else if (const char *v = matchOption(argv[i], "--index-heap"))
            index_heap = std::atoi(v) != 0;
        else if (const char *v = matchOption(argv[i], "--prefault"))
            prefault = std::atoi(v) != 0;
        else if (const char *v = matchOption(argv[i], "--num-docs"))
            num_docs = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--dim"))
            dim = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--topics"))
            topics = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--clusters"))
            clusters = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--nlist"))
            nlist = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--batch-window-us"))
            batch_window_us = std::strtod(v, nullptr);
        else if (const char *v = matchOption(argv[i], "--max-batch"))
            max_batch = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--fail-prob"))
            fail_prob = std::strtod(v, nullptr);
        else if (const char *v = matchOption(argv[i], "--drop-prob"))
            drop_prob = std::strtod(v, nullptr);
        else if (const char *v = matchOption(argv[i], "--delay-ms"))
            delay_ms = std::strtod(v, nullptr);
        else if (const char *v = matchOption(argv[i], "--http-port"))
            http_port = std::atoi(v);
        else if (const char *v = matchOption(argv[i], "--trace-out"))
            trace_out = v;
        else if (const char *v = matchOption(argv[i], "--trace-sample"))
            trace_sample = std::strtol(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--metrics-json"))
            metrics_json = v;
        else if (const char *v = matchOption(argv[i], "--perf"))
            perf_flag = std::atoi(v) != 0;
        else {
            std::fprintf(stderr, "unknown option: %s\n", argv[i]);
            return 2;
        }
    }
    if (cluster < 0 ||
        (index_file.empty() &&
         static_cast<std::size_t>(cluster) >= clusters)) {
        std::fprintf(stderr,
                     "usage: hermes_shard --cluster=N (0..%zu) [options]\n",
                     clusters - 1);
        return 2;
    }

    // Flags win; env vars fill the gaps so a supervisor can arm capture
    // fleet-wide without touching each shard's command line.
    if (trace_out.empty()) {
        if (const char *env = std::getenv("HERMES_TRACE_OUT"))
            trace_out = env;
    }
    if (metrics_json.empty()) {
        if (const char *env = std::getenv("HERMES_METRICS_JSON"))
            metrics_json = env;
    }
    if (trace_sample <= 0) {
        if (const char *env = std::getenv("HERMES_TRACE_SAMPLE"))
            trace_sample = std::strtol(env, nullptr, 10);
    }
    if (perf_flag)
        obs::setPerfEnabled(true); // HERMES_PERF=1 works without the flag
    // Start the recorder before the server: adopted remote contexts are
    // gated on the shard's own recorder, so spans must be recordable by
    // the time the first RPC lands. Shard-side "sampling" is decided by
    // the broker (it only propagates contexts for queries it sampled);
    // the local sample rate only affects locally-initiated traces.
    if (!trace_out.empty() || trace_sample > 0) {
        obs::TraceRecorder::instance().start(
            trace_sample > 0 ? static_cast<std::size_t>(trace_sample) : 1);
    }
    // Dump metadata lets hermes_trace_merge label this process and match
    // it to the broker's rpc.clock_sync record for its node id.
    const std::vector<obs::TraceArg> trace_metadata = {
        {"process", "hermes_shard", false},
        {"cluster", std::to_string(cluster), true},
    };

    std::optional<core::DistributedStore> store;
    std::unique_ptr<index::IvfIndex> loaded;
    const index::AnnIndex *shard = nullptr;
    if (!index_file.empty()) {
        // Cold-start path: serve a pre-built v3 index file. The mmap
        // open touches only the 256-byte header plus the tiny centroid
        // section, so restart-to-ready is milliseconds regardless of
        // shard size; scan kernels then run directly on mapped bytes.
        index::IvfIndex::MmapOptions mopts;
        mopts.prefault = prefault;
        loaded = core::loadOrFatal([&] {
            return index_heap
                       ? index::IvfIndex::load(index_file)
                       : index::IvfIndex::openMapped(index_file, mopts);
        });
        shard = loaded.get();
    } else {
        // Same deterministic corpus + partition as serving_demo / the
        // tests: matching flags on every process of the fleet reproduce
        // the exact in-process store, which is what makes the
        // out-of-process path bit-comparable.
        workload::CorpusConfig cc;
        cc.num_docs = num_docs;
        cc.dim = dim;
        cc.num_topics = topics;
        auto corpus = workload::generateCorpus(cc);

        core::HermesConfig config;
        config.num_clusters = clusters;
        config.clusters_to_search = std::min<std::size_t>(3, clusters);
        config.sample_nprobe = 4;
        config.deep_nprobe = 32;
        config.partition.seeds_to_try = 3;
        config.nlist_per_cluster = nlist;
        store.emplace(
            core::DistributedStore::build(corpus.embeddings, config));
        shard = &store->clusterIndex(static_cast<std::size_t>(cluster));
    }

    serve::ShardServerOptions options;
    options.bind_address = bind_address;
    options.port = static_cast<std::uint16_t>(port);
    options.node.node_id = static_cast<std::size_t>(cluster);
    options.node.batch_window_us = batch_window_us;
    if (max_batch > 0)
        options.node.max_batch = max_batch;
    options.node.faults.fail_probability = fail_prob;
    options.node.faults.drop_probability = drop_prob;
    options.node.faults.delay_probability = delay_ms > 0.0 ? 0.2 : 0.0;
    options.node.faults.delay_ms = delay_ms;

    serve::ShardServer server(*shard, options);
    if (!server.start())
        return 1;

    std::unique_ptr<obs::Exporter> exporter;
    if (http_port >= 0) {
        obs::Exporter::Options eopts;
        eopts.bind_address = bind_address;
        eopts.port = static_cast<std::uint16_t>(http_port);
        exporter = std::make_unique<obs::Exporter>(eopts);
        // Shadow the builtin /trace.json so fetched dumps carry the
        // same process/cluster metadata as the drain-path file.
        exporter->setHandler("/trace.json", [trace_metadata] {
            return obs::TraceRecorder::instance().toJson(trace_metadata);
        });
        exporter->setHandler("/shard", [&server, cluster, replica] {
            auto node = server.nodeStats();
            auto srv = server.stats();
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                "{\"cluster\": %ld, \"replica\": %ld, \"requests\": %llu, "
                "\"batches\": %llu, "
                "\"connections\": %llu, \"errors\": %llu}",
                cluster, replica,
                static_cast<unsigned long long>(node.requests),
                static_cast<unsigned long long>(node.batches),
                static_cast<unsigned long long>(srv.connections_accepted),
                static_cast<unsigned long long>(srv.errors_returned));
            return std::string(buf);
        });
        if (exporter->start())
            std::printf("hermes_shard metrics http://%s:%u\n",
                        bind_address.c_str(), exporter->port());
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // Launchers (CI fleet-smoke, tests) block on this line to learn the
    // bound port, so it must escape the stdio buffer immediately. New
    // fields (replica=) only ever append, keeping old launchers happy.
    if (replica > 0)
        std::printf("hermes_shard ready cluster=%ld vectors=%zu port=%u "
                    "replica=%ld\n",
                    cluster, shard->size(), server.port(), replica);
    else
        std::printf("hermes_shard ready cluster=%ld vectors=%zu port=%u\n",
                    cluster, shard->size(), server.port());
    std::fflush(stdout);

    while (!g_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    server.stop();
    // Drain-path capture: a TERM'd shard still leaves its spans and
    // counters behind for post-mortem merging.
    if (!trace_out.empty())
        obs::TraceRecorder::instance().writeChromeTrace(trace_out,
                                                        trace_metadata);
    if (!metrics_json.empty())
        obs::Registry::instance().writeJson(metrics_json);
    auto stats = server.stats();
    std::printf("hermes_shard exit cluster=%ld requests=%llu "
                "connections=%llu errors=%llu\n",
                cluster,
                static_cast<unsigned long long>(stats.requests_served),
                static_cast<unsigned long long>(stats.connections_accepted),
                static_cast<unsigned long long>(stats.errors_returned));
    return 0;
}
