/**
 * @file
 * Live fleet dashboard: polls one or more Hermes metrics endpoints
 * (serving_demo --http-port, hermes_shard --http-port,
 * hermes_profile_search --http-port) and renders per-cluster load,
 * windowed QPS/latency and modeled energy in place — the operator's
 * view of the paper's Fig 13 access skew and Fig 18 energy accounting,
 * live.
 *
 * Single-process mode (--host/--port) polls GET /load (broker
 * LoadReport) and GET /metrics.json. Fleet mode (--endpoints=
 * host:port,host:port,...) polls every endpoint per tick and merges
 * them into one view: the first endpoint serving /load (the broker)
 * gets the full dashboard, and every endpoint — broker and shards —
 * gets a row in the fleet table (uptime, served requests, rpc.*
 * client counters, transport/remote errors, RSS). Shard rows read the
 * hermes_shard /shard handler when present.
 *
 * --csv appends one row per endpoint per poll, with a leading quoted
 * `source` column; the header is written only when the file starts
 * empty, so appending across sessions never repeats it. Ctrl-C (or
 * --count) ends the session cleanly.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/exporter.hpp"
#include "util/argparse.hpp"
#include "util/minijson.hpp"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void
onSignal(int)
{
    g_interrupted = 1;
}

/** Sleep in short slices so Ctrl-C ends the wait promptly. */
void
interruptibleSleep(double seconds)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration<double>(seconds);
    while (!g_interrupted &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

double
num(const hermes::util::json::Value &v, const char *key)
{
    const auto *m = v.find(key);
    return m ? m->numberOr(0.0) : 0.0;
}

/** One endpoint to poll. */
struct Endpoint
{
    std::string host;
    std::uint16_t port = 0;
    std::string label; ///< "host:port", the CSV source column
};

/** What one poll of one endpoint yielded. */
struct Sample
{
    bool up = false;       ///< /metrics.json answered and parsed
    bool has_load = false; ///< /load answered (it's a broker)
    hermes::util::json::ParseResult load;

    double uptime_s = 0.0;
    double rss_bytes = 0.0;
    double requests = 0.0; ///< broker.queries, or /shard requests
    double rpc_rpcs = 0.0;
    double rpc_redials = 0.0;
    double rpc_errors = 0.0; ///< transport failures + remote errors

    /** Hardware measurement (/perf): present only when the endpoint
     *  runs with --perf AND the kernel granted counters or RAPL —
     *  otherwise the columns render as "-" / empty CSV cells, never
     *  as fabricated zeros. */
    bool has_perf = false;
    double ipc = 0.0;
    double cache_miss_pct = 0.0;
    double measured_package_j = 0.0;
    double measured_watts = 0.0;
};

bool
parseEndpoint(const std::string &spec, Endpoint &out)
{
    std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0)
        return false;
    int port = std::atoi(spec.c_str() + colon + 1);
    if (port <= 0 || port > 65535)
        return false;
    out.host = spec.substr(0, colon);
    out.port = static_cast<std::uint16_t>(port);
    out.label = spec;
    return true;
}

Sample
pollEndpoint(const Endpoint &endpoint)
{
    using hermes::util::json::Value;
    Sample sample;

    std::string metrics_body;
    if (!hermes::obs::httpGet(endpoint.host, endpoint.port,
                              "/metrics.json", &metrics_body))
        return sample;
    auto metrics = hermes::util::json::parse(metrics_body);
    if (!metrics.ok)
        return sample;
    sample.up = true;

    const Value &root = metrics.value;
    if (const Value *v = root.at({"gauges", "process.uptime_seconds"}))
        sample.uptime_s = v->numberOr(0.0);
    if (const Value *v = root.at({"gauges", "process.rss_bytes"}))
        sample.rss_bytes = v->numberOr(0.0);
    if (const Value *counters = root.find("counters")) {
        if (const Value *v = counters->find("broker.queries"))
            sample.requests = v->numberOr(0.0);
        if (const Value *v = counters->find("rpc.rpcs"))
            sample.rpc_rpcs = v->numberOr(0.0);
        if (const Value *v = counters->find("rpc.redials"))
            sample.rpc_redials = v->numberOr(0.0);
        if (const Value *v = counters->find("rpc.transport_failures"))
            sample.rpc_errors += v->numberOr(0.0);
        if (const Value *v = counters->find("rpc.remote_errors"))
            sample.rpc_errors += v->numberOr(0.0);
    }

    std::string load_body;
    if (hermes::obs::httpGet(endpoint.host, endpoint.port, "/load",
                             &load_body)) {
        sample.load = hermes::util::json::parse(load_body);
        sample.has_load = sample.load.ok;
    }

    std::string perf_body;
    if (hermes::obs::httpGet(endpoint.host, endpoint.port, "/perf",
                             &perf_body)) {
        auto perf = hermes::util::json::parse(perf_body);
        if (perf.ok) {
            const Value *unavailable = perf.value.find("unavailable");
            if (unavailable && !unavailable->boolOr(true)) {
                sample.has_perf = true;
                sample.ipc = num(perf.value, "ipc");
                sample.cache_miss_pct = num(perf.value, "cache_miss_pct");
                sample.measured_package_j =
                    num(perf.value, "package_joules");
                sample.measured_watts = num(perf.value, "package_watts");
            }
        }
    }

    // Shards don't serve /load; their request totals come from the
    // hermes_shard /shard handler when one is registered.
    if (!sample.has_load && sample.requests == 0.0) {
        std::string shard_body;
        if (hermes::obs::httpGet(endpoint.host, endpoint.port, "/shard",
                                 &shard_body)) {
            auto shard = hermes::util::json::parse(shard_body);
            if (shard.ok)
                sample.requests = num(shard.value, "requests");
        }
    }
    return sample;
}

/** The full single-broker dashboard (the original monitor view). */
void
renderLoadDashboard(const hermes::util::json::Value &root,
                    const std::string &label, double rss_bytes, long polls)
{
    using hermes::util::json::Value;
    std::printf("hermes @ %s   uptime %.1f s   poll %ld\n", label.c_str(),
                num(root, "uptime_seconds"), polls);
    std::printf("queries %.0f (cumulative)   %.1f QPS over last "
                "%.0f s   degraded %.0f\n",
                num(root, "queries"), num(root, "window_qps"),
                num(root, "window_seconds"),
                num(root, "degraded_queries"));
    std::printf("latency p50/p99: window %.0f/%.0f us   cumulative "
                "%.0f/%.0f us\n",
                num(root, "window_p50_us"), num(root, "window_p99_us"),
                num(root, "cumulative_p50_us"),
                num(root, "cumulative_p99_us"));
    std::printf("deep-load skew: max/mean %.2f   zipf ~%.2f   "
                "energy %.1f J   rss %.1f MiB\n",
                num(root, "max_mean_ratio"), num(root, "zipf_exponent"),
                num(root, "total_energy_joules"),
                rss_bytes / (1024.0 * 1024.0));
    const double hedges = num(root, "hedges_issued");
    std::printf("hedges: %.0f issued, %.0f won (%.0f%% win rate), "
                "%.0f wasted\n",
                hedges, num(root, "hedges_won"),
                hedges > 0.0 ? 100.0 * num(root, "hedges_won") / hedges
                             : 0.0,
                num(root, "hedges_wasted"));
    // Measured (RAPL) energy beside the model, when the broker runs
    // with --perf on readable powercap hardware.
    const Value *measured = root.find("measured_energy_valid");
    if (measured && measured->boolOr(false)) {
        std::printf("measured energy: %.1f J package, %.1f J dram   "
                    "measured/modeled %.2f\n",
                    num(root, "measured_package_joules"),
                    num(root, "measured_dram_joules"),
                    num(root, "energy_model_error_ratio"));
    }
    std::printf("\n");

    const Value *clusters = root.find("clusters");
    if (clusters && clusters->isArray() && clusters->size() > 0) {
        double max_deep = 1.0;
        for (const Value &c : clusters->items())
            max_deep = std::max(max_deep, num(c, "deep_requests"));
        std::printf("%-4s %-9s %-8s %-8s %-6s %-5s %-6s %-8s %-4s "
                    "%-12s %-22s\n",
                    "node", "shard", "sample", "deep", "queue", "occ",
                    "util", "energy", "repl", "route share", "deep load");
        for (const Value &c : clusters->items()) {
            double deep = num(c, "deep_requests");
            int bar = static_cast<int>(20.0 * deep / max_deep + 0.5);
            // Replica route share, e.g. "54/46": how p2c split the
            // cluster's probes across its copies.
            std::string routes = "-";
            const Value *route_counts = c.find("replica_routes");
            if (route_counts && route_counts->isArray() &&
                route_counts->size() > 1) {
                double total = 0.0;
                for (const Value &r : route_counts->items())
                    total += r.numberOr(0.0);
                routes.clear();
                for (const Value &r : route_counts->items()) {
                    if (!routes.empty())
                        routes += "/";
                    char pct[16];
                    std::snprintf(pct, sizeof(pct), "%.0f",
                                  total > 0.0
                                      ? 100.0 * r.numberOr(0.0) / total
                                      : 0.0);
                    routes += pct;
                }
            }
            std::printf("%-4.0f %-9.0f %-8.0f %-8.0f %-6.0f %-5.2f "
                        "%5.1f%% %7.1fJ %-4.0f %-12s %.*s\n",
                        num(c, "cluster"), num(c, "shard_vectors"),
                        num(c, "sample_requests"), deep,
                        num(c, "queue_depth"), num(c, "batch_occupancy"),
                        num(c, "utilization") * 100.0,
                        num(c, "energy_joules"),
                        std::max(num(c, "replicas"), 1.0), routes.c_str(),
                        bar, "####################");
        }
        std::printf("\n");
    }
}

/** One row per endpoint: the fleet-wide merged table. The four
 *  hardware columns (ipc, cache-miss %, measured watts, measured
 *  J/query) render as "-" unless the endpoint's /perf is live. */
void
renderFleetTable(const std::vector<Endpoint> &endpoints,
                 const std::vector<Sample> &samples)
{
    std::printf("%-22s %-4s %-9s %-9s %-8s %-8s %-8s %-9s %-6s %-7s "
                "%-7s %-8s\n",
                "source", "up", "uptime_s", "requests", "rpcs",
                "redials", "rpc_err", "rss_mib", "ipc", "cmiss%",
                "watts", "j/q_meas");
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        const Sample &s = samples[i];
        if (!s.up) {
            std::printf("%-22s %-4s %-9s %-9s %-8s %-8s %-8s %-9s "
                        "%-6s %-7s %-7s %-8s\n",
                        endpoints[i].label.c_str(), "no", "-", "-", "-",
                        "-", "-", "-", "-", "-", "-", "-");
            continue;
        }
        char ipc[16] = "-";
        char cmiss[16] = "-";
        char watts[16] = "-";
        char jpq[16] = "-";
        if (s.has_perf) {
            std::snprintf(ipc, sizeof(ipc), "%.2f", s.ipc);
            std::snprintf(cmiss, sizeof(cmiss), "%.2f",
                          s.cache_miss_pct);
            std::snprintf(watts, sizeof(watts), "%.1f",
                          s.measured_watts);
            if (s.requests > 0.0 && s.measured_package_j > 0.0)
                std::snprintf(jpq, sizeof(jpq), "%.2f",
                              s.measured_package_j / s.requests);
        }
        std::printf("%-22s %-4s %-9.1f %-9.0f %-8.0f %-8.0f %-8.0f "
                    "%-9.1f %-6s %-7s %-7s %-8s\n",
                    endpoints[i].label.c_str(),
                    s.has_load ? "yes*" : "yes", s.uptime_s, s.requests,
                    s.rpc_rpcs, s.rpc_redials, s.rpc_errors,
                    s.rss_bytes / (1024.0 * 1024.0), ipc, cmiss, watts,
                    jpq);
    }
}

/** CSV-quote a string field (RFC 4180 double-quote escaping). */
std::string
csvQuote(const std::string &field)
{
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hermes;
    using util::json::Value;

    util::ArgParser args("hermes_monitor",
                         "live dashboard over Hermes metrics endpoints");
    args.addFlag("host", "127.0.0.1", "endpoint host (single-process mode)");
    args.addFlag("port", "0", "endpoint port (single-process mode)");
    args.addFlag("endpoints", "",
                 "comma-separated host:port list (fleet mode; overrides "
                 "--host/--port)");
    args.addFlag("interval", "1.0", "seconds between polls");
    args.addFlag("count", "0", "polls before exiting (0 = until Ctrl-C)");
    args.addFlag("csv", "",
                 "append one row per endpoint per poll to this CSV file");
    args.parse(argc, argv);

    const double interval = std::max(args.getDouble("interval"), 0.05);
    const long count = args.getInt("count");
    const std::string csv_path = args.get("csv");

    std::vector<Endpoint> endpoints;
    const std::string endpoints_flag = args.get("endpoints");
    if (!endpoints_flag.empty()) {
        std::size_t start = 0;
        while (start <= endpoints_flag.size()) {
            std::size_t comma = endpoints_flag.find(',', start);
            if (comma == std::string::npos)
                comma = endpoints_flag.size();
            if (comma > start) {
                Endpoint endpoint;
                std::string spec =
                    endpoints_flag.substr(start, comma - start);
                if (!parseEndpoint(spec, endpoint)) {
                    std::fprintf(stderr,
                                 "hermes_monitor: bad endpoint %s\n",
                                 spec.c_str());
                    return 2;
                }
                endpoints.push_back(std::move(endpoint));
            }
            start = comma + 1;
        }
    } else {
        Endpoint endpoint;
        endpoint.host = args.get("host");
        endpoint.port = static_cast<std::uint16_t>(args.getInt("port"));
        endpoint.label =
            endpoint.host + ":" + std::to_string(endpoint.port);
        if (endpoint.port == 0) {
            std::fprintf(stderr,
                         "hermes_monitor: --port or --endpoints is "
                         "required (the serving binary prints its port "
                         "at startup)\n");
            return 2;
        }
        endpoints.push_back(std::move(endpoint));
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::FILE *csv = nullptr;
    if (!csv_path.empty()) {
        // Header exactly once per file: only when it starts empty, so
        // appending across monitor sessions never repeats it mid-data.
        bool fresh = true;
        if (std::FILE *probe = std::fopen(csv_path.c_str(), "r")) {
            fresh = std::fgetc(probe) == EOF;
            std::fclose(probe);
        }
        csv = std::fopen(csv_path.c_str(), "a");
        if (!csv) {
            std::fprintf(stderr, "hermes_monitor: cannot open %s\n",
                         csv_path.c_str());
            return 2;
        }
        if (fresh) {
            std::fprintf(csv, "source,poll,uptime_s,requests,window_qps,"
                              "window_p50_us,window_p99_us,"
                              "max_mean_ratio,zipf_exponent,"
                              "total_energy_j,rpc_rpcs,rpc_errors,"
                              "rss_bytes,hedges_issued,hedge_win_rate,"
                              "measured_j,measured_w,ipc,"
                              "cache_miss_pct\n");
        }
    }

    const bool tty = isatty(STDOUT_FILENO) != 0;
    long polls = 0;
    long failures = 0;
    std::vector<Sample> samples(endpoints.size());
    for (long i = 0; (count == 0 || i < count) && !g_interrupted; ++i) {
        if (i > 0)
            interruptibleSleep(interval);
        if (g_interrupted)
            break;

        std::size_t up = 0;
        for (std::size_t e = 0; e < endpoints.size(); ++e) {
            samples[e] = pollEndpoint(endpoints[e]);
            if (samples[e].up)
                ++up;
        }
        if (up == 0) {
            ++failures;
            std::fprintf(stderr,
                         "hermes_monitor: poll %ld reached none of %zu "
                         "endpoint(s) (%ld failures so far)\n", i + 1,
                         endpoints.size(), failures);
            if (failures >= 5 && polls == 0) {
                std::fprintf(stderr,
                             "hermes_monitor: giving up — are the "
                             "serving binaries running with "
                             "--http-port?\n");
                break;
            }
            continue;
        }
        ++polls;

        if (tty)
            std::printf("\x1b[H\x1b[J"); // home + clear: redraw in place

        // The first /load-serving endpoint (the broker) gets the rich
        // dashboard; everyone gets a fleet-table row.
        bool rendered_load = false;
        for (std::size_t e = 0; e < endpoints.size(); ++e) {
            if (!samples[e].has_load)
                continue;
            renderLoadDashboard(samples[e].load.value,
                                endpoints[e].label,
                                samples[e].rss_bytes, polls);
            rendered_load = true;
            break;
        }
        if (!rendered_load) {
            std::printf("hermes fleet   poll %ld   %zu/%zu endpoints "
                        "up\n\n", polls, up, endpoints.size());
        }
        if (endpoints.size() > 1 || !rendered_load)
            renderFleetTable(endpoints, samples);
        std::fflush(stdout);

        if (csv) {
            for (std::size_t e = 0; e < endpoints.size(); ++e) {
                const Sample &s = samples[e];
                if (!s.up) {
                    // A down endpoint still gets its row — source and
                    // poll index with every metric cell empty — so the
                    // column grid stays aligned across the file and a
                    // mid-run outage reads as a gap, not a shifted row.
                    std::fprintf(csv, "%s,%ld,,,,,,,,,,,,,,,,,\n",
                                 csvQuote(endpoints[e].label).c_str(),
                                 polls);
                    continue;
                }
                const Value *load =
                    s.has_load ? &s.load.value : nullptr;
                const double hedges_issued =
                    load ? num(*load, "hedges_issued") : 0.0;
                const double hedge_win_rate = hedges_issued > 0.0
                    ? num(*load, "hedges_won") / hedges_issued
                    : 0.0;
                // Hardware columns stay empty (not 0) when /perf has no
                // data — absence of measurement, not a measured zero.
                char perf_cells[80] = ",,,";
                if (s.has_perf) {
                    std::snprintf(perf_cells, sizeof(perf_cells),
                                  "%.3f,%.3f,%.3f,%.4f",
                                  s.measured_package_j, s.measured_watts,
                                  s.ipc, s.cache_miss_pct);
                }
                std::fprintf(
                    csv,
                    "%s,%ld,%.3f,%.0f,%.3f,%.1f,%.1f,%.3f,%.3f,%.2f,"
                    "%.0f,%.0f,%.0f,%.0f,%.3f,%s\n",
                    csvQuote(endpoints[e].label).c_str(), polls,
                    s.uptime_s, s.requests,
                    load ? num(*load, "window_qps") : 0.0,
                    load ? num(*load, "window_p50_us") : 0.0,
                    load ? num(*load, "window_p99_us") : 0.0,
                    load ? num(*load, "max_mean_ratio") : 0.0,
                    load ? num(*load, "zipf_exponent") : 0.0,
                    load ? num(*load, "total_energy_joules") : 0.0,
                    s.rpc_rpcs, s.rpc_errors, s.rss_bytes,
                    hedges_issued, hedge_win_rate, perf_cells);
            }
            std::fflush(csv);
        }
    }

    if (csv)
        std::fclose(csv);
    std::printf("%shermes_monitor: %ld polls, %ld failed%s\n",
                tty ? "\n" : "", polls, failures,
                g_interrupted ? " (interrupted)" : "");
    return polls > 0 ? 0 : 1;
}
