/**
 * @file
 * Live fleet dashboard: polls a running Hermes binary's embedded
 * metrics endpoint (serving_demo --http-port / hermes_profile_search
 * --http-port) and renders per-cluster load, windowed QPS/latency and
 * modeled energy in place — the operator's view of the paper's Fig 13
 * access skew and Fig 18 energy accounting, live.
 *
 * Polls GET /load (broker LoadReport) and GET /metrics.json (for the
 * process.* self-stats); optionally appends one CSV row per poll for
 * offline plotting. Ctrl-C (or --count) ends the session cleanly.
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include <unistd.h>

#include "obs/exporter.hpp"
#include "util/argparse.hpp"
#include "util/minijson.hpp"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;

void
onSignal(int)
{
    g_interrupted = 1;
}

/** Sleep in short slices so Ctrl-C ends the wait promptly. */
void
interruptibleSleep(double seconds)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration<double>(seconds);
    while (!g_interrupted &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

double
num(const hermes::util::json::Value &v, const char *key)
{
    const auto *m = v.find(key);
    return m ? m->numberOr(0.0) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hermes;
    using util::json::Value;

    util::ArgParser args("hermes_monitor",
                         "live dashboard over a Hermes metrics endpoint");
    args.addFlag("host", "127.0.0.1", "endpoint host");
    args.addFlag("port", "0", "endpoint port (required)");
    args.addFlag("interval", "1.0", "seconds between polls");
    args.addFlag("count", "0", "polls before exiting (0 = until Ctrl-C)");
    args.addFlag("csv", "", "append one row per poll to this CSV file");
    args.parse(argc, argv);

    const std::string host = args.get("host");
    const auto port = static_cast<std::uint16_t>(args.getInt("port"));
    const double interval = std::max(args.getDouble("interval"), 0.05);
    const long count = args.getInt("count");
    const std::string csv_path = args.get("csv");
    if (port == 0) {
        std::fprintf(stderr, "hermes_monitor: --port is required "
                     "(the serving binary prints it at startup)\n");
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    std::FILE *csv = nullptr;
    if (!csv_path.empty()) {
        bool fresh = true;
        if (std::FILE *probe = std::fopen(csv_path.c_str(), "r")) {
            fresh = std::fgetc(probe) == EOF;
            std::fclose(probe);
        }
        csv = std::fopen(csv_path.c_str(), "a");
        if (!csv) {
            std::fprintf(stderr, "hermes_monitor: cannot open %s\n",
                         csv_path.c_str());
            return 2;
        }
        if (fresh) {
            std::fprintf(csv, "poll,uptime_s,queries,window_qps,"
                              "window_p50_us,window_p99_us,"
                              "max_mean_ratio,zipf_exponent,"
                              "total_energy_j,rss_bytes\n");
        }
    }

    const bool tty = isatty(STDOUT_FILENO) != 0;
    long polls = 0;
    long failures = 0;
    for (long i = 0; (count == 0 || i < count) && !g_interrupted; ++i) {
        if (i > 0)
            interruptibleSleep(interval);
        if (g_interrupted)
            break;

        std::string load_body;
        if (!obs::httpGet(host, port, "/load", &load_body)) {
            ++failures;
            std::fprintf(stderr, "hermes_monitor: poll of %s:%u/load "
                         "failed (%ld so far)\n", host.c_str(), port,
                         failures);
            if (failures >= 5 && polls == 0) {
                std::fprintf(stderr, "hermes_monitor: giving up — is the "
                             "serving binary running with --http-port?\n");
                break;
            }
            continue;
        }
        auto load = util::json::parse(load_body);
        if (!load.ok) {
            ++failures;
            std::fprintf(stderr, "hermes_monitor: bad /load payload: %s "
                         "(offset %zu)\n", load.error.c_str(),
                         load.position);
            continue;
        }

        // Self-stats piggyback on the same scrape (best-effort).
        double rss_bytes = 0.0;
        std::string metrics_body;
        if (obs::httpGet(host, port, "/metrics.json", &metrics_body)) {
            auto metrics = util::json::parse(metrics_body);
            if (metrics.ok) {
                if (const Value *rss = metrics.value.at(
                        {"gauges", "process.rss_bytes"}))
                    rss_bytes = rss->numberOr(0.0);
            }
        }

        const Value &root = load.value;
        ++polls;
        if (tty)
            std::printf("\x1b[H\x1b[J"); // home + clear: redraw in place

        std::printf("hermes @ %s:%u   uptime %.1f s   poll %ld\n",
                    host.c_str(), port, num(root, "uptime_seconds"),
                    polls);
        std::printf("queries %.0f (cumulative)   %.1f QPS over last "
                    "%.0f s   degraded %.0f\n",
                    num(root, "queries"), num(root, "window_qps"),
                    num(root, "window_seconds"),
                    num(root, "degraded_queries"));
        std::printf("latency p50/p99: window %.0f/%.0f us   cumulative "
                    "%.0f/%.0f us\n",
                    num(root, "window_p50_us"), num(root, "window_p99_us"),
                    num(root, "cumulative_p50_us"),
                    num(root, "cumulative_p99_us"));
        std::printf("deep-load skew: max/mean %.2f   zipf ~%.2f   "
                    "energy %.1f J   rss %.1f MiB\n\n",
                    num(root, "max_mean_ratio"),
                    num(root, "zipf_exponent"),
                    num(root, "total_energy_joules"),
                    rss_bytes / (1024.0 * 1024.0));

        const Value *clusters = root.find("clusters");
        if (clusters && clusters->isArray() && clusters->size() > 0) {
            double max_deep = 1.0;
            for (const Value &c : clusters->items())
                max_deep = std::max(max_deep, num(c, "deep_requests"));
            std::printf("%-4s %-9s %-8s %-8s %-6s %-5s %-6s %-8s %-22s\n",
                        "node", "shard", "sample", "deep", "queue",
                        "occ", "util", "energy", "deep load");
            for (const Value &c : clusters->items()) {
                double deep = num(c, "deep_requests");
                int bar = static_cast<int>(20.0 * deep / max_deep + 0.5);
                std::printf("%-4.0f %-9.0f %-8.0f %-8.0f %-6.0f %-5.2f "
                            "%5.1f%% %7.1fJ %.*s\n",
                            num(c, "cluster"), num(c, "shard_vectors"),
                            num(c, "sample_requests"), deep,
                            num(c, "queue_depth"),
                            num(c, "batch_occupancy"),
                            num(c, "utilization") * 100.0,
                            num(c, "energy_joules"), bar,
                            "####################");
            }
        }
        std::fflush(stdout);

        if (csv) {
            std::fprintf(csv,
                         "%ld,%.3f,%.0f,%.3f,%.1f,%.1f,%.3f,%.3f,%.2f,"
                         "%.0f\n",
                         polls, num(root, "uptime_seconds"),
                         num(root, "queries"), num(root, "window_qps"),
                         num(root, "window_p50_us"),
                         num(root, "window_p99_us"),
                         num(root, "max_mean_ratio"),
                         num(root, "zipf_exponent"),
                         num(root, "total_energy_joules"), rss_bytes);
            std::fflush(csv);
        }
    }

    if (csv)
        std::fclose(csv);
    std::printf("%shermes_monitor: %ld polls, %ld failed%s\n",
                tty ? "\n" : "", polls, failures,
                g_interrupted ? " (interrupted)" : "");
    return polls > 0 ? 0 : 1;
}
