/**
 * @file
 * Index construction tool (artifact appendix A.5 step 7, Table 3).
 *
 * Synthesizes a datastore (or loads a saved embedding matrix), partitions
 * it with the requested scheme, builds the per-cluster IVF indices, and
 * writes everything plus a manifest to the output directory so the
 * profiling and accuracy tools can reload the deployment.
 */

#include <filesystem>

#include "tool_common.hpp"

#include "util/argparse.hpp"
#include "util/timer.hpp"
#include "workload/corpus.hpp"

int
main(int argc, char **argv)
{
    using namespace hermes;

    util::ArgParser args("hermes_build_index",
                         "build Hermes retrieval indices");
    args.addFlag("output", "hermes_index", "output directory");
    args.addFlag("type", "clustered",
                 "monolithic | split (round-robin) | clustered (Hermes)");
    args.addFlag("num-docs", "20000", "synthetic corpus size (chunks)");
    args.addFlag("dim", "64", "embedding dimensionality");
    args.addFlag("num-topics", "30", "latent topics in the corpus");
    args.addFlag("num-indices", "10", "cluster indices to build");
    args.addFlag("codec", "SQ8", "vector codec (Flat/SQ8/SQ4/PQ<M>)");
    args.addFlag("nlist", "0", "inverted lists per index (0 = sqrt(n))");
    args.addFlag("seeds-to-try", "4",
                 "K-means seeds for the balanced-seed search");
    args.addFlag("seed", "42", "corpus generation seed");
    args.addFlag("corpus", "",
                 "load this .hmat embedding matrix instead of synthesizing");
    args.parse(argc, argv);

    std::filesystem::path dir(args.get("output"));
    std::filesystem::create_directories(dir);

    // Datastore embeddings: synthetic topic corpus or a user matrix.
    vecstore::Matrix data(0);
    if (args.given("corpus")) {
        data = vecstore::Matrix::load(args.get("corpus"));
        HERMES_INFORM("loaded ", data.rows(), " x ", data.dim(),
                      " embeddings from ", args.get("corpus"));
    } else {
        workload::CorpusConfig cc;
        cc.num_docs = static_cast<std::size_t>(args.getInt("num-docs"));
        cc.dim = static_cast<std::size_t>(args.getInt("dim"));
        cc.num_topics = static_cast<std::size_t>(args.getInt("num-topics"));
        cc.seed = static_cast<std::uint64_t>(args.getInt("seed"));
        data = workload::generateCorpus(cc).embeddings;
        HERMES_INFORM("synthesized ", data.rows(), " x ", data.dim(),
                      " embeddings (", cc.num_topics, " topics)");
    }

    tools::Manifest manifest;
    manifest.type = args.get("type");
    manifest.dim = data.dim();
    manifest.codec = args.get("codec");

    core::HermesConfig config;
    config.codec = manifest.codec;
    config.nlist_per_cluster =
        static_cast<std::size_t>(args.getInt("nlist"));
    config.partition.seeds_to_try =
        static_cast<std::size_t>(args.getInt("seeds-to-try"));

    util::Timer timer;
    if (manifest.type == "monolithic") {
        config.num_clusters = 1;
        config.clusters_to_search = 1;
        config.partition.scheme = cluster::PartitionScheme::Contiguous;
    } else {
        config.num_clusters =
            static_cast<std::size_t>(args.getInt("num-indices"));
        config.clusters_to_search =
            std::min<std::size_t>(3, config.num_clusters);
        config.partition.scheme = manifest.type == "split"
            ? cluster::PartitionScheme::RoundRobin
            : cluster::PartitionScheme::Similarity;
        if (manifest.type != "split" && manifest.type != "clustered") {
            HERMES_FATAL("unknown --type '", manifest.type, "'");
        }
    }
    manifest.num_clusters = config.num_clusters;

    auto store = core::DistributedStore::build(data, config);
    HERMES_INFORM("built ", store.numClusters(), " ", manifest.codec,
                  " indices in ", timer.elapsedSeconds(), " s (imbalance ",
                  store.partitioning().imbalance.max_min_ratio, ")");

    data.save((dir / manifest.corpus_file).string());
    store.centroids().save((dir / manifest.centroids_file).string());
    for (std::size_t c = 0; c < store.numClusters(); ++c) {
        std::string file = "cluster_" + std::to_string(c) + ".hivf";
        store.clusterIndex(c).save((dir / file).string());
        manifest.cluster_files.push_back(file);
    }
    manifest.save(dir);

    HERMES_INFORM("wrote deployment to ", dir.string(), " (",
                  store.memoryBytes() / 1024 / 1024, " MiB of indices)");
    return 0;
}
