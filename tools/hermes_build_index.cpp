/**
 * @file
 * Index construction tool (artifact appendix A.5 step 7, Table 3).
 *
 * Synthesizes a datastore (or loads a saved embedding matrix), partitions
 * it with the requested scheme, builds the per-cluster IVF indices, and
 * writes everything plus a manifest to the output directory so the
 * profiling and accuracy tools can reload the deployment.
 *
 * --stream=1 switches per-cluster construction to the bounded-memory
 * IvfStreamWriter path: each cluster trains a small prototype (centroids
 * + codec), then streams its rows through a spill-and-scatter writer in
 * fixed batches, so encoded lists are never resident — peak index-build
 * memory is O(one cluster's training set + --stream-budget-mb),
 * independent of the deployment's total index size, and the output
 * files are byte-identical to the default in-memory build. The summary
 * reports peak RSS (getrusage) in both modes so the saving is
 * measurable.
 */

#include <filesystem>

#include <sys/resource.h>

#include "tool_common.hpp"

#include "cluster/partitioner.hpp"
#include "index/ivf_stream_writer.hpp"
#include "util/argparse.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"
#include "workload/corpus.hpp"

namespace {

/** Peak resident set size of this process, in MiB. */
double
peakRssMib()
{
    struct rusage usage{};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0; // KiB on Linux
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hermes;

    util::ArgParser args("hermes_build_index",
                         "build Hermes retrieval indices");
    args.addFlag("output", "hermes_index", "output directory");
    args.addFlag("type", "clustered",
                 "monolithic | split (round-robin) | clustered (Hermes)");
    args.addFlag("num-docs", "20000", "synthetic corpus size (chunks)");
    args.addFlag("dim", "64", "embedding dimensionality");
    args.addFlag("num-topics", "30", "latent topics in the corpus");
    args.addFlag("num-indices", "10", "cluster indices to build");
    args.addFlag("codec", "SQ8", "vector codec (Flat/SQ8/SQ4/PQ<M>)");
    args.addFlag("nlist", "0", "inverted lists per index (0 = sqrt(n))");
    args.addFlag("seeds-to-try", "4",
                 "K-means seeds for the balanced-seed search");
    args.addFlag("seed", "42", "corpus generation seed");
    args.addFlag("corpus", "",
                 "load this .hmat embedding matrix instead of synthesizing");
    args.addFlag("stream", "0",
                 "1 = bounded-memory streaming build (IvfStreamWriter)");
    args.addFlag("stream-batch", "8192",
                 "rows per streaming encode batch");
    args.addFlag("stream-budget-mb", "64",
                 "scatter-phase flush budget per cluster (MiB)");
    args.parse(argc, argv);

    std::filesystem::path dir(args.get("output"));
    std::filesystem::create_directories(dir);

    // Datastore embeddings: synthetic topic corpus or a user matrix.
    vecstore::Matrix data(0);
    if (args.given("corpus")) {
        data = vecstore::Matrix::load(args.get("corpus"));
        HERMES_INFORM("loaded ", data.rows(), " x ", data.dim(),
                      " embeddings from ", args.get("corpus"));
    } else {
        workload::CorpusConfig cc;
        cc.num_docs = static_cast<std::size_t>(args.getInt("num-docs"));
        cc.dim = static_cast<std::size_t>(args.getInt("dim"));
        cc.num_topics = static_cast<std::size_t>(args.getInt("num-topics"));
        cc.seed = static_cast<std::uint64_t>(args.getInt("seed"));
        data = workload::generateCorpus(cc).embeddings;
        HERMES_INFORM("synthesized ", data.rows(), " x ", data.dim(),
                      " embeddings (", cc.num_topics, " topics)");
    }

    tools::Manifest manifest;
    manifest.type = args.get("type");
    manifest.dim = data.dim();
    manifest.codec = args.get("codec");

    core::HermesConfig config;
    config.codec = manifest.codec;
    config.nlist_per_cluster =
        static_cast<std::size_t>(args.getInt("nlist"));
    config.partition.seeds_to_try =
        static_cast<std::size_t>(args.getInt("seeds-to-try"));

    util::Timer timer;
    if (manifest.type == "monolithic") {
        config.num_clusters = 1;
        config.clusters_to_search = 1;
        config.partition.scheme = cluster::PartitionScheme::Contiguous;
    } else {
        config.num_clusters =
            static_cast<std::size_t>(args.getInt("num-indices"));
        config.clusters_to_search =
            std::min<std::size_t>(3, config.num_clusters);
        config.partition.scheme = manifest.type == "split"
            ? cluster::PartitionScheme::RoundRobin
            : cluster::PartitionScheme::Similarity;
        if (manifest.type != "split" && manifest.type != "clustered") {
            HERMES_FATAL("unknown --type '", manifest.type, "'");
        }
    }
    manifest.num_clusters = config.num_clusters;

    if (args.getInt("stream") != 0) {
        // Bounded-memory path: partition, then per cluster train a
        // prototype and stream the rows through the spill-and-scatter
        // writer. Clusters are built sequentially on purpose — the
        // point is the memory ceiling, and the writer's add() still
        // fans encode work across the pool.
        config.validate();
        config.partition.num_partitions = config.num_clusters;
        auto partition = cluster::partition(data, config.partition);

        data.save((dir / manifest.corpus_file).string());
        partition.centroids.save((dir / manifest.centroids_file).string());

        const std::size_t batch_rows = static_cast<std::size_t>(
            std::max<long>(args.getInt("stream-batch"), 1));
        index::IvfStreamWriter::Options sopts;
        sopts.buffer_budget_bytes =
            static_cast<std::size_t>(
                std::max<long>(args.getInt("stream-budget-mb"), 1))
            << 20;
        util::ThreadPool pool;
        std::uintmax_t index_bytes = 0;
        for (std::size_t c = 0; c < config.num_clusters; ++c) {
            const auto &members = partition.members[c];
            HERMES_ASSERT(!members.empty(),
                          "partitioning produced empty cluster ", c);

            // Identical config + seed to DistributedStore::build, so
            // the streamed file is byte-identical to the in-memory
            // build's save() of the same cluster.
            index::IvfConfig ivf;
            ivf.codec = config.codec;
            ivf.nlist = config.nlist_per_cluster
                ? config.nlist_per_cluster
                : index::IvfIndex::suggestedNlist(members.size());
            ivf.nlist = std::min(ivf.nlist, members.size());
            ivf.seed = 0x1d10 + c;

            index::IvfIndex prototype(data.dim(), vecstore::Metric::L2,
                                      ivf);
            {
                vecstore::Matrix train_data = data.gather(members);
                prototype.train(train_data);
            } // training rows released before streaming starts

            std::string file = "cluster_" + std::to_string(c) + ".hivf";
            index::IvfStreamWriter writer(prototype,
                                          (dir / file).string(), sopts);
            for (std::size_t at = 0; at < members.size();
                 at += batch_rows) {
                const std::size_t n =
                    std::min(batch_rows, members.size() - at);
                std::vector<std::size_t> rows(
                    members.begin() + static_cast<std::ptrdiff_t>(at),
                    members.begin() + static_cast<std::ptrdiff_t>(at + n));
                std::vector<vecstore::VecId> ids(rows.begin(), rows.end());
                vecstore::Matrix batch = data.gather(rows);
                writer.add(batch, ids, &pool);
            }
            writer.finish();
            index_bytes += std::filesystem::file_size(dir / file);
            manifest.cluster_files.push_back(file);
        }
        manifest.save(dir);

        HERMES_INFORM("stream-built ", config.num_clusters, " ",
                      manifest.codec, " indices in ",
                      timer.elapsedSeconds(), " s (imbalance ",
                      partition.imbalance.max_min_ratio, ")");
        HERMES_INFORM("wrote deployment to ", dir.string(), " (",
                      index_bytes / 1024 / 1024,
                      " MiB of index files, peak RSS ", peakRssMib(),
                      " MiB)");
        return 0;
    }

    auto store = core::DistributedStore::build(data, config);
    HERMES_INFORM("built ", store.numClusters(), " ", manifest.codec,
                  " indices in ", timer.elapsedSeconds(), " s (imbalance ",
                  store.partitioning().imbalance.max_min_ratio, ")");

    data.save((dir / manifest.corpus_file).string());
    store.centroids().save((dir / manifest.centroids_file).string());
    for (std::size_t c = 0; c < store.numClusters(); ++c) {
        std::string file = "cluster_" + std::to_string(c) + ".hivf";
        store.clusterIndex(c).save((dir / file).string());
        manifest.cluster_files.push_back(file);
    }
    manifest.save(dir);

    HERMES_INFORM("wrote deployment to ", dir.string(), " (",
                  store.memoryBytes() / 1024 / 1024,
                  " MiB of indices, peak RSS ", peakRssMib(), " MiB)");
    return 0;
}
