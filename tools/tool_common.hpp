/**
 * @file
 * Shared plumbing for the command-line tools: the on-disk deployment
 * manifest tying together the corpus matrix, cluster centroids and the
 * serialized per-cluster indices (artifact appendix A.5 steps 7-12).
 */

#pragma once

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/distributed_store.hpp"
#include "util/logging.hpp"
#include "vecstore/matrix.hpp"

namespace hermes {
namespace tools {

/** Deployment manifest: everything needed to reload a built index set. */
struct Manifest
{
    /** "monolithic", "split" (round-robin) or "clustered" (Hermes). */
    std::string type = "clustered";

    /** Number of cluster index files. */
    std::size_t num_clusters = 0;

    /** Embedding dimensionality. */
    std::size_t dim = 0;

    /** Codec spec the indices were built with. */
    std::string codec = "SQ8";

    /** File names, relative to the manifest directory. */
    std::string corpus_file = "corpus.hmat";
    std::string centroids_file = "centroids.hmat";
    std::vector<std::string> cluster_files;

    /** Write to @p dir/manifest.txt. */
    void
    save(const std::filesystem::path &dir) const
    {
        std::ofstream out(dir / "manifest.txt");
        if (!out)
            HERMES_FATAL("cannot write manifest in ", dir.string());
        out << "type=" << type << '\n';
        out << "num_clusters=" << num_clusters << '\n';
        out << "dim=" << dim << '\n';
        out << "codec=" << codec << '\n';
        out << "corpus=" << corpus_file << '\n';
        out << "centroids=" << centroids_file << '\n';
        for (std::size_t c = 0; c < cluster_files.size(); ++c)
            out << "cluster_" << c << '=' << cluster_files[c] << '\n';
    }

    /** Load from @p dir/manifest.txt. */
    static Manifest
    load(const std::filesystem::path &dir)
    {
        std::ifstream in(dir / "manifest.txt");
        if (!in)
            HERMES_FATAL("no manifest.txt in ", dir.string(),
                         " (run hermes_build_index first)");
        std::map<std::string, std::string> kv;
        std::string line;
        while (std::getline(in, line)) {
            auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            kv[line.substr(0, eq)] = line.substr(eq + 1);
        }
        Manifest manifest;
        manifest.type = kv.at("type");
        manifest.num_clusters = std::stoul(kv.at("num_clusters"));
        manifest.dim = std::stoul(kv.at("dim"));
        manifest.codec = kv.at("codec");
        manifest.corpus_file = kv.at("corpus");
        manifest.centroids_file = kv.at("centroids");
        for (std::size_t c = 0; c < manifest.num_clusters; ++c)
            manifest.cluster_files.push_back(
                kv.at("cluster_" + std::to_string(c)));
        return manifest;
    }
};

/** Reload a DistributedStore from a manifest directory. */
inline core::DistributedStore
loadStore(const std::filesystem::path &dir, const Manifest &manifest,
          core::HermesConfig config)
{
    config.num_clusters = manifest.num_clusters;
    config.codec = manifest.codec;
    std::vector<std::unique_ptr<index::IvfIndex>> indices;
    for (const auto &file : manifest.cluster_files)
        indices.push_back(index::IvfIndex::load((dir / file).string()));
    auto centroids =
        vecstore::Matrix::load((dir / manifest.centroids_file).string());
    return core::DistributedStore::assemble(config, std::move(indices),
                                            std::move(centroids));
}

} // namespace tools
} // namespace hermes
