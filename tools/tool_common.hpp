/**
 * @file
 * Shared plumbing for the command-line tools. The deployment manifest
 * moved to core/manifest.hpp so the serving layer can load it too; this
 * header keeps the historical tools:: spellings working.
 */

#pragma once

#include "core/manifest.hpp"

namespace hermes {
namespace tools {

using Manifest = core::Manifest;
using core::loadOrFatal;
using core::loadStore;
using core::StoreLoadMode;

} // namespace tools
} // namespace hermes
