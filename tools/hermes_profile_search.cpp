/**
 * @file
 * Search profiling tool (artifact appendix A.5 step 8, Table 4).
 *
 * Reloads a deployment built by hermes_build_index and measures wall-clock
 * latency, throughput and scan work for the requested search strategy and
 * parameters (sample/deep nProbe, batch size, retrieved docs, threads).
 */

#include <filesystem>

#include "tool_common.hpp"

#include "core/search_strategy.hpp"
#include "obs/exporter.hpp"
#include "obs/obs.hpp"
#include "serve/broker.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "vecstore/distance.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

/** Query workload: perturb random datastore rows. */
vecstore::Matrix
makeQueries(const vecstore::Matrix &data, std::size_t count, double noise,
            std::uint64_t seed)
{
    util::Rng rng(seed);
    vecstore::Matrix queries(count, data.dim());
    for (std::size_t q = 0; q < count; ++q) {
        auto src = data.row(rng.uniformInt(data.rows()));
        auto dst = queries.row(q);
        for (std::size_t j = 0; j < data.dim(); ++j)
            dst[j] = src[j] + static_cast<float>(rng.gaussian(0.0, noise));
        vecstore::normalize(dst.data(), data.dim());
    }
    return queries;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("hermes_profile_search",
                         "profile retrieval latency and throughput");
    args.addFlag("index", "hermes_index", "deployment directory");
    args.addFlag("mode", "hermes",
                 "hermes | centroid | split-all | serve (threaded broker)");
    args.addFlag("sample-nprobe", "8", "sampling nProbe");
    args.addFlag("deep-nprobe", "64", "deep-search nProbe");
    args.addFlag("clusters-to-search", "3", "deep-searched clusters");
    args.addFlag("batch", "64", "queries per batch");
    args.addFlag("num-queries", "512", "total queries");
    args.addFlag("k", "5", "documents retrieved per query");
    args.addFlag("noise", "0.3", "query perturbation noise");
    args.addFlag("seed", "7", "query seed");
    args.addFlag("metrics-json", "",
                 "write the metrics registry as JSON to this path");
    args.addFlag("metrics-prom", "",
                 "write Prometheus-style metrics text to this path");
    args.addFlag("metrics-interval", "0",
                 "also re-write the metrics files every N seconds "
                 "during the run");
    args.addFlag("http-port", "",
                 "serve /metrics, /metrics.json and (serve mode) /load "
                 "on this port while profiling (0 = ephemeral)");
    args.addFlag("trace-out", "",
                 "write a Chrome trace-event JSON to this path "
                 "(open in chrome://tracing or ui.perfetto.dev)");
    args.addFlag("trace-sample", "1",
                 "with --trace-out, trace one in N queries");
    args.parse(argc, argv);

    if (args.given("trace-out")) {
        obs::TraceRecorder::instance().start(
            static_cast<std::size_t>(args.getInt("trace-sample")));
    }

    std::filesystem::path dir(args.get("index"));
    auto manifest = tools::Manifest::load(dir);

    core::HermesConfig config;
    config.sample_nprobe =
        static_cast<std::size_t>(args.getInt("sample-nprobe"));
    config.deep_nprobe =
        static_cast<std::size_t>(args.getInt("deep-nprobe"));
    config.clusters_to_search = std::min<std::size_t>(
        static_cast<std::size_t>(args.getInt("clusters-to-search")),
        manifest.num_clusters);
    auto store = tools::loadOrFatal(
        [&] { return tools::loadStore(dir, manifest, config); });

    auto data =
        vecstore::Matrix::load((dir / manifest.corpus_file).string());
    auto queries = makeQueries(
        data, static_cast<std::size_t>(args.getInt("num-queries")),
        args.getDouble("noise"),
        static_cast<std::uint64_t>(args.getInt("seed")));

    const auto batch = static_cast<std::size_t>(args.getInt("batch"));
    const auto k = static_cast<std::size_t>(args.getInt("k"));
    const std::string mode = args.get("mode");

    std::unique_ptr<core::SearchStrategy> strategy;
    std::unique_ptr<serve::HermesBroker> broker;
    if (mode == "hermes") {
        strategy = std::make_unique<core::HermesSearch>(store);
    } else if (mode == "centroid") {
        strategy = std::make_unique<core::CentroidRouting>(store);
    } else if (mode == "split-all") {
        strategy = std::make_unique<core::NaiveSplitSearch>(store);
    } else if (mode == "serve") {
        broker = std::make_unique<serve::HermesBroker>(store);
    } else {
        HERMES_FATAL("unknown --mode '", mode, "'");
    }

    // Live observability while the profile runs (same hookup as
    // serving_demo; hermes_monitor can watch a long profile).
    std::unique_ptr<obs::Exporter> exporter;
    if (args.given("http-port")) {
        obs::Exporter::Options options;
        options.port =
            static_cast<std::uint16_t>(args.getInt("http-port"));
        exporter = std::make_unique<obs::Exporter>(options);
        if (broker) {
            serve::HermesBroker *b = broker.get();
            exporter->setHandler("/load", [b] {
                return b->loadReport().toJson();
            });
        }
        if (exporter->start()) {
            std::printf("metrics endpoint: http://127.0.0.1:%u\n",
                        exporter->port());
            // Pollers wait on this line; with stdout redirected to a
            // file it would otherwise sit in the stdio buffer until exit.
            std::fflush(stdout);
        }
    }
    std::unique_ptr<obs::PeriodicFlusher> flusher;
    if (args.getDouble("metrics-interval") > 0.0 &&
        (args.given("metrics-json") || args.given("metrics-prom"))) {
        flusher = std::make_unique<obs::PeriodicFlusher>(
            args.get("metrics-json"), args.get("metrics-prom"),
            args.getDouble("metrics-interval"));
    }

    util::Distribution batch_latency;
    index::SearchStats work;
    util::Timer total;
    for (std::size_t begin = 0; begin < queries.rows(); begin += batch) {
        std::size_t end = std::min(begin + batch, queries.rows());
        util::Timer timer;
        for (std::size_t q = begin; q < end; ++q) {
            if (broker) {
                broker->search(queries.row(q), k);
            } else {
                auto result = strategy->search(queries.row(q), k);
                work.merge(result.total);
            }
        }
        batch_latency.add(timer.elapsedSeconds());
    }
    double elapsed = total.elapsedSeconds();

    std::printf("\nmode=%s  indices=%zu  batch=%zu  k=%zu  "
                "sample/deep nProbe=%zu/%zu  clusters=%zu\n",
                mode.c_str(), manifest.num_clusters, batch, k,
                config.sample_nprobe, config.deep_nprobe,
                config.clusters_to_search);
    std::printf("queries: %zu in %.3f s  =>  %.0f QPS\n", queries.rows(),
                elapsed, static_cast<double>(queries.rows()) / elapsed);
    std::printf("batch latency: p50 %.4f s, p99 %.4f s\n",
                batch_latency.percentile(50), batch_latency.percentile(99));
    if (!broker) {
        std::printf("scan work: %.0f vectors/query, %.1f KiB/query\n",
                    static_cast<double>(work.vectors_scanned) /
                        static_cast<double>(queries.rows()),
                    static_cast<double>(work.bytes_scanned) / 1024.0 /
                        static_cast<double>(queries.rows()));
    } else {
        auto stats = broker->stats();
        std::printf("broker: %llu queries, %llu deep requests, "
                    "%zu node workers\n",
                    static_cast<unsigned long long>(stats.queries),
                    static_cast<unsigned long long>(stats.deep_requests),
                    stats.nodes.size());
    }

    // Per-phase latency breakdown from the metrics registry. Serve mode
    // records under broker.*, the in-process strategies under core.*.
    auto &registry = obs::Registry::instance();
    const char *prefix = broker ? "broker" : "core";
    const char *phases[] = {"query_latency_us", "sample_phase_us",
                            "deep_phase_us", "merge_phase_us"};
    std::printf("\nphase breakdown (%s.*):\n", prefix);
    for (const char *phase : phases) {
        std::string name = std::string(prefix) + "." + phase;
        if (!registry.hasHistogram(name))
            continue;
        auto summary =
            obs::LatencySummary::from(registry.histogram(name).snapshot());
        if (summary.count == 0)
            continue;
        std::printf("  %-28s p50 %9.1f us  p95 %9.1f us  "
                    "p99 %9.1f us  max %9.1f us  (n=%llu)\n",
                    name.c_str(), summary.p50_us, summary.p95_us,
                    summary.p99_us, summary.max_us,
                    static_cast<unsigned long long>(summary.count));
    }

    flusher.reset(); // final periodic flush before the one-shot writes
    if (args.given("metrics-json")) {
        registry.writeJson(args.get("metrics-json"));
        std::printf("metrics written to %s\n",
                    args.get("metrics-json").c_str());
    }
    if (args.given("metrics-prom")) {
        registry.writePrometheus(args.get("metrics-prom"));
        std::printf("prometheus metrics written to %s\n",
                    args.get("metrics-prom").c_str());
    }
    if (args.given("trace-out")) {
        auto &recorder = obs::TraceRecorder::instance();
        recorder.stop();
        recorder.writeChromeTrace(args.get("trace-out"));
        std::printf("trace (%zu spans) written to %s\n",
                    recorder.spanCount(), args.get("trace-out").c_str());
    }
    return 0;
}
