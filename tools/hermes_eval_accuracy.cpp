/**
 * @file
 * Accuracy evaluation tool (artifact appendix A.5 step 12).
 *
 * Reloads a deployment, computes an exhaustive brute-force ground truth,
 * and reports NDCG/recall for every search strategy across a sweep of
 * clusters searched — the data behind Fig 11 for a user's own indices.
 */

#include <filesystem>

#include "tool_common.hpp"

#include "core/search_strategy.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "vecstore/distance.hpp"
#include "util/csv.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

vecstore::Matrix
makeQueries(const vecstore::Matrix &data, std::size_t count, double noise,
            std::uint64_t seed)
{
    util::Rng rng(seed);
    vecstore::Matrix queries(count, data.dim());
    for (std::size_t q = 0; q < count; ++q) {
        auto src = data.row(rng.uniformInt(data.rows()));
        auto dst = queries.row(q);
        for (std::size_t j = 0; j < data.dim(); ++j)
            dst[j] = src[j] + static_cast<float>(rng.gaussian(0.0, noise));
        vecstore::normalize(dst.data(), data.dim());
    }
    return queries;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser args("hermes_eval_accuracy",
                         "evaluate retrieval accuracy vs brute force");
    args.addFlag("index", "hermes_index", "deployment directory");
    args.addFlag("num-queries", "128", "evaluation queries");
    args.addFlag("k", "5", "documents retrieved per query");
    args.addFlag("sample-nprobe", "8", "sampling nProbe");
    args.addFlag("deep-nprobe", "64", "deep-search nProbe");
    args.addFlag("noise", "0.3", "query perturbation noise");
    args.addFlag("seed", "11", "query seed");
    args.addFlag("csv", "", "optional CSV output path");
    args.parse(argc, argv);

    std::filesystem::path dir(args.get("index"));
    auto manifest = tools::Manifest::load(dir);

    core::HermesConfig config;
    config.sample_nprobe =
        static_cast<std::size_t>(args.getInt("sample-nprobe"));
    config.deep_nprobe =
        static_cast<std::size_t>(args.getInt("deep-nprobe"));
    config.clusters_to_search = 1;
    auto store = tools::loadOrFatal(
        [&] { return tools::loadStore(dir, manifest, config); });

    auto data =
        vecstore::Matrix::load((dir / manifest.corpus_file).string());
    auto queries = makeQueries(
        data, static_cast<std::size_t>(args.getInt("num-queries")),
        args.getDouble("noise"),
        static_cast<std::uint64_t>(args.getInt("seed")));
    const auto k = static_cast<std::size_t>(args.getInt("k"));

    HERMES_INFORM("computing brute-force ground truth over ", data.rows(),
                  " vectors...");
    auto truth =
        eval::exactGroundTruth(data, queries, k, vecstore::Metric::L2);

    auto evaluate = [&](const core::SearchStrategy &strategy) {
        std::vector<vecstore::HitList> results;
        for (std::size_t q = 0; q < queries.rows(); ++q)
            results.push_back(strategy.search(queries.row(q), k).hits);
        return std::pair<double, double>(
            eval::meanNdcgAtK(results, truth, k),
            eval::meanRecallAtK(results, truth, k));
    };

    std::unique_ptr<util::CsvWriter> csv;
    if (args.given("csv")) {
        csv = std::make_unique<util::CsvWriter>(args.get("csv"));
        csv->header({"clusters", "strategy", "ndcg", "recall"});
    }

    util::TablePrinter table({10, 12, 10, 10});
    table.header({"clusters", "strategy", "NDCG", "recall"});
    for (std::size_t deep = 1; deep <= manifest.num_clusters; ++deep) {
        core::HermesSearch hermes(store, deep);
        core::CentroidRouting centroid(store, deep);
        for (const auto &[name, strategy] :
             std::vector<std::pair<std::string,
                                   const core::SearchStrategy *>>{
                 {"hermes", &hermes}, {"centroid", &centroid}}) {
            auto [ndcg, recall] = evaluate(*strategy);
            table.row({std::to_string(deep), name,
                       util::TablePrinter::num(ndcg, 3),
                       util::TablePrinter::num(recall, 3)});
            if (csv) {
                csv->cell(deep).cell(name).cell(ndcg).cell(recall);
                csv->endRow();
            }
        }
    }

    core::NaiveSplitSearch split(store);
    auto [ndcg, recall] = evaluate(split);
    table.row({"all", "split-all", util::TablePrinter::num(ndcg, 3),
               util::TablePrinter::num(recall, 3)});
    if (csv) {
        csv->cell(manifest.num_clusters).cell("split-all").cell(ndcg)
            .cell(recall);
        csv->endRow();
    }
    return 0;
}
