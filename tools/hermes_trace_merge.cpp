/**
 * @file
 * Merge per-process Chrome trace dumps into one fleet-wide trace.
 *
 * The broker dump carries `rpc.clock_sync` instants (one per Health
 * handshake) that record each shard's trace-clock offset, so this tool
 * can align every shard's timestamps onto the broker's clock with no
 * cooperation from the shards beyond handing over their dumps.
 *
 * Usage:
 *   hermes_trace_merge --broker-trace=FILE
 *                      [--shards=host:port,host:port,...]
 *                      [--shard-file=FILE]...
 *                      [--out=FILE]
 *
 * --shards fetches /trace.json from each listed obs exporter endpoint
 * (a live fleet); --shard-file reads a dump a shard wrote on drain
 * (HERMES_TRACE_OUT / --trace-out). Both may be combined. The merged
 * trace goes to --out (default merged_trace.json) and loads in
 * chrome://tracing or https://ui.perfetto.dev with one row of
 * processes: broker pid 1, shards pid 2+.
 *
 * Exit status: 0 on success (even with per-shard warnings, which go to
 * stderr), 1 when the broker dump is missing or unparseable, 2 on bad
 * usage.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/exporter.hpp"
#include "serve/trace_merge.hpp"

namespace {

const char *
matchOption(const char *arg, const char *name)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=')
        return arg + len + 1;
    return nullptr;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** "host:port" → parts; false on anything unparseable. */
bool
splitEndpoint(const std::string &endpoint, std::string &host, int &port)
{
    std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0)
        return false;
    host = endpoint.substr(0, colon);
    port = std::atoi(endpoint.c_str() + colon + 1);
    return port > 0 && port <= 65535;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hermes;

    std::string broker_path;
    std::vector<std::string> shard_endpoints;
    std::vector<std::string> shard_files;
    std::string out_path = "merged_trace.json";
    for (int i = 1; i < argc; ++i) {
        if (const char *v = matchOption(argv[i], "--broker-trace"))
            broker_path = v;
        else if (const char *v = matchOption(argv[i], "--shards")) {
            for (const auto &endpoint : splitCommas(v))
                shard_endpoints.push_back(endpoint);
        } else if (const char *v = matchOption(argv[i], "--shard-file"))
            shard_files.push_back(v);
        else if (const char *v = matchOption(argv[i], "--out"))
            out_path = v;
        else {
            std::fprintf(stderr, "unknown option: %s\n", argv[i]);
            return 2;
        }
    }
    if (broker_path.empty()) {
        std::fprintf(stderr,
                     "usage: hermes_trace_merge --broker-trace=FILE "
                     "[--shards=host:port,...] [--shard-file=FILE]... "
                     "[--out=FILE]\n");
        return 2;
    }

    serve::TraceDumpInput broker;
    broker.source = broker_path;
    if (!readFile(broker_path, broker.json)) {
        std::fprintf(stderr, "error: cannot read broker trace %s\n",
                     broker_path.c_str());
        return 1;
    }

    std::vector<serve::TraceDumpInput> shards;
    for (const auto &endpoint : shard_endpoints) {
        std::string host;
        int port = 0;
        if (!splitEndpoint(endpoint, host, port)) {
            std::fprintf(stderr, "error: bad endpoint %s\n",
                         endpoint.c_str());
            return 2;
        }
        serve::TraceDumpInput dump;
        dump.source = endpoint;
        if (!obs::httpGet(host, static_cast<std::uint16_t>(port),
                          "/trace.json", &dump.json)) {
            std::fprintf(stderr,
                         "warning: fetch of %s/trace.json failed; "
                         "skipping that shard\n",
                         endpoint.c_str());
            continue;
        }
        shards.push_back(std::move(dump));
    }
    for (const auto &path : shard_files) {
        serve::TraceDumpInput dump;
        dump.source = path;
        if (!readFile(path, dump.json)) {
            std::fprintf(stderr,
                         "warning: cannot read %s; skipping that shard\n",
                         path.c_str());
            continue;
        }
        shards.push_back(std::move(dump));
    }

    serve::TraceMergeResult merged = serve::mergeTraces(broker, shards);
    for (const auto &warning : merged.warnings)
        std::fprintf(stderr, "warning: %s\n", warning.c_str());
    if (!merged.ok) {
        std::fprintf(stderr, "error: %s\n", merged.error.c_str());
        return 1;
    }

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out || !(out << merged.json)) {
        std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
        return 1;
    }
    out.close();
    std::printf("hermes_trace_merge wrote %s events=%zu processes=%zu\n",
                out_path.c_str(), merged.events, merged.processes);
    return 0;
}
